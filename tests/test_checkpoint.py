"""Tests for checkpoint/restart of node-failure victims."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec, PoolSpec
from repro.engine import FailureEvent, SchedulerSimulation, audit_result
from repro.errors import ConfigurationError
from repro.memdis import LinearPenalty, NoPenalty
from repro.sched import Scheduler
from repro.units import GiB
from repro.workload import Job, JobState

from .conftest import make_job


def cluster2(global_pool=0):
    spec = ClusterSpec(
        num_nodes=2, nodes_per_rack=2,
        node=NodeSpec(local_mem=16 * GiB),
        pool=PoolSpec(global_pool=global_pool),
    )
    return Cluster(spec)


def ckpt_job(job_id=1, interval=100.0, runtime=1000.0, **kwargs):
    defaults = dict(submit=0.0, nodes=1, walltime=2000.0, mem=1 * GiB)
    defaults.update(kwargs)
    job = make_job(job_id=job_id, runtime=runtime, **defaults)
    job.checkpoint_interval = interval
    return job


class TestValidation:
    def test_negative_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            Job(job_id=1, submit_time=0, nodes=1, walltime=10, runtime=5,
                mem_per_node=1, checkpoint_interval=0.0)

    def test_copy_request_preserves_checkpoint_fields(self):
        job = ckpt_job()
        job.restart_count = 2
        copy = job.copy_request()
        assert copy.checkpoint_interval == 100.0
        assert copy.restart_count == 2


class TestRestartSemantics:
    def test_continuation_resumes_from_last_checkpoint(self):
        # Job runs 0..1000; killed at t=250 with checkpoints every 100:
        # 200s of progress saved, continuation needs 800s.
        job = ckpt_job()
        result = SchedulerSimulation(
            cluster2(), Scheduler(penalty=NoPenalty()), [job],
            failures=[FailureEvent(250.0, 0, 50.0)],
        ).run()
        audit_result(result)
        assert job.state is JobState.KILLED
        assert job.kill_reason == "node_failure"
        continuation = next(j for j in result.jobs if j.restart_of == 1)
        assert continuation.runtime == pytest.approx(800.0)
        assert continuation.submit_time == pytest.approx(250.0)
        assert continuation.restart_count == 1
        assert continuation.state is JobState.COMPLETED
        # It restarted immediately on the surviving node 1.
        assert continuation.start_time == pytest.approx(250.0)
        assert continuation.end_time == pytest.approx(1050.0)

    def test_no_checkpoint_before_failure_restarts_from_scratch(self):
        job = ckpt_job(interval=1000.0)  # first checkpoint would be at 1000
        result = SchedulerSimulation(
            cluster2(), Scheduler(penalty=NoPenalty()), [job],
            failures=[FailureEvent(250.0, 0, 50.0)],
        ).run()
        audit_result(result)
        continuation = next(j for j in result.jobs if j.restart_of == 1)
        assert continuation.runtime == pytest.approx(1000.0)

    def test_non_checkpointable_job_not_resubmitted(self):
        job = make_job(job_id=1, submit=0.0, nodes=1, runtime=1000.0,
                       walltime=2000.0, mem=1 * GiB)
        result = SchedulerSimulation(
            cluster2(), Scheduler(penalty=NoPenalty()), [job],
            failures=[FailureEvent(250.0, 0, 50.0)],
        ).run()
        audit_result(result)
        assert len(result.jobs) == 1
        assert job.state is JobState.KILLED

    def test_progress_deflated_by_dilation(self):
        # Remote memory dilates the job 1.2x; killed at wall-clock 240
        # means base progress 200 -> exactly two 100s checkpoints.
        job = ckpt_job(mem=20 * GiB)  # 4 GiB remote, f=0.2, beta=1 -> 0.2
        result = SchedulerSimulation(
            cluster2(global_pool=16 * GiB),
            Scheduler(penalty=LinearPenalty(beta=1.0)), [job],
            failures=[FailureEvent(240.0, 0, 50.0)],
        ).run()
        audit_result(result)
        continuation = next(j for j in result.jobs if j.restart_of == 1)
        assert continuation.runtime == pytest.approx(800.0)

    def test_repeated_failures_chain_restarts(self):
        job = ckpt_job()
        result = SchedulerSimulation(
            cluster2(), Scheduler(penalty=NoPenalty()), [job],
            failures=[
                FailureEvent(250.0, 0, 1e6),  # node 0 dies for good
                FailureEvent(500.0, 1, 1e6),  # then node 1... but
            ],
        ).run()
        # First kill at 250 (200 saved); continuation starts on node 1
        # at 250 needing 800; second failure at 500 kills it with 200
        # more saved... but now both nodes are down; the third
        # continuation waits for a repair that arrives at ~1e6.
        lineage = [j for j in result.jobs if j.restart_of == 1]
        assert len(lineage) == 2
        final = lineage[-1]
        assert final.runtime == pytest.approx(600.0)
        assert final.state is JobState.COMPLETED
        assert final.start_time >= 1e6  # waited for repair
        audit_result(result)

    def test_checkpointing_preserves_completed_work(self):
        """With checkpoints, total completed base-work survives a
        failure storm far better than without."""
        def storm(checkpointed: bool):
            jobs = []
            for i in range(8):
                job = make_job(job_id=i + 1, submit=float(i * 50), nodes=1,
                               runtime=2000.0, walltime=4000.0, mem=1 * GiB)
                if checkpointed:
                    job.checkpoint_interval = 200.0
                jobs.append(job)
            failures = [FailureEvent(1000.0 + 300 * k, k % 2, 100.0)
                        for k in range(4)]
            result = SchedulerSimulation(
                cluster2(), Scheduler(penalty=NoPenalty()), jobs,
                failures=failures,
            ).run()
            audit_result(result)
            roots_done = {
                j.restart_of or j.job_id
                for j in result.jobs if j.state is JobState.COMPLETED
            }
            return len(roots_done)

        assert storm(True) >= storm(False)

    def test_walltime_kill_does_not_restart(self):
        # Checkpointing guards against machine failures, not user
        # underestimates: a walltime kill is final.
        job = ckpt_job(runtime=1000.0, walltime=500.0)
        result = SchedulerSimulation(
            cluster2(), Scheduler(penalty=NoPenalty()), [job],
        ).run()
        audit_result(result)
        assert job.state is JobState.KILLED
        assert job.kill_reason == "walltime"
        assert len(result.jobs) == 1

"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster import ClusterSpec, Cluster, NodeSpec, PoolSpec
from repro.units import GiB
from repro.workload import Job


def make_job(
    job_id: int = 1,
    submit: float = 0.0,
    nodes: int = 1,
    walltime: float = 3600.0,
    runtime: float = 1800.0,
    mem: int = 4 * GiB,
    mem_used: int | None = None,
    **kwargs,
) -> Job:
    """Concise job constructor used throughout the tests."""
    return Job(
        job_id=job_id,
        submit_time=submit,
        nodes=nodes,
        walltime=walltime,
        runtime=runtime,
        mem_per_node=mem,
        mem_used_per_node=mem if mem_used is None else mem_used,
        **kwargs,
    )


@pytest.fixture
def tiny_cluster() -> Cluster:
    """4 nodes, 2 racks, no pools, 16 GiB local each."""
    spec = ClusterSpec(
        name="tiny",
        num_nodes=4,
        nodes_per_rack=2,
        node=NodeSpec(cores=8, local_mem=16 * GiB),
        pool=PoolSpec(),
    )
    return Cluster(spec)


@pytest.fixture
def pooled_cluster() -> Cluster:
    """8 nodes, 2 racks, rack pools of 64 GiB and a 128 GiB global pool."""
    spec = ClusterSpec(
        name="pooled",
        num_nodes=8,
        nodes_per_rack=4,
        node=NodeSpec(cores=8, local_mem=16 * GiB),
        pool=PoolSpec(rack_pool=64 * GiB, global_pool=128 * GiB),
    )
    return Cluster(spec)

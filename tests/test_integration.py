"""Cross-module integration tests: medium workloads through every
policy combination, with the full auditor as the oracle.

These are the tests that catch interaction bugs no unit test sees:
backfill × allocator × placement × penalty × kill policy, all driven
by realistic (seeded) workloads, every run checked for double-booked
nodes, pool overcommit, reach violations, broken EASY promises, and
conservation of every granted MiB.
"""

from __future__ import annotations

import pytest

from repro.analysis import run_config
from repro.cluster import ClusterSpec
from repro.engine import SchedulerSimulation, audit_result
from repro.memdis import FixedRatioSplit, LocalFirstSplit
from repro.sched import Scheduler, build_scheduler
from repro.units import GiB
from repro.workload import JobState, scale_load
from repro.workload.reference import generate_reference_jobs

NODES = 32


def workload(name="W-MIX", n=200, seed=7, load=0.9):
    return generate_reference_jobs(
        name, seed=seed, num_jobs=n, cluster_nodes=NODES,
        max_mem_per_node=512 * GiB, target_load=load,
    )


def fat_spec():
    return ClusterSpec.fat_node(num_nodes=NODES, local_mem="512GiB",
                                nodes_per_rack=8, name="FAT")


def thin_spec(reach="global", fraction=0.5):
    return ClusterSpec.thin_node(
        num_nodes=NODES, nodes_per_rack=8, local_mem="128GiB",
        fat_local_mem="512GiB", pool_fraction=fraction, reach=reach,
    )


class TestPolicyMatrix:
    """Every backfill × queue policy combination on a pooled machine
    completes, audits clean, and terminates every job."""

    @pytest.mark.parametrize("backfill", ["none", "easy", "conservative"])
    @pytest.mark.parametrize("queue", ["fcfs", "sjf", "wfp"])
    def test_combination_audits_clean(self, backfill, queue):
        jobs = workload(n=120)
        result, summary = run_config(
            thin_spec(), jobs,
            queue=queue, backfill=backfill,
            penalty={"kind": "linear", "beta": 0.3},
            class_local_mem=512 * GiB,
        )
        assert summary.jobs_completed + summary.jobs_killed \
            + summary.jobs_rejected == 120
        assert summary.node_utilization > 0.1

    @pytest.mark.parametrize("placement", ["first_fit", "rack_pack",
                                           "min_remote", "spread"])
    def test_placements_on_rack_pools(self, placement):
        jobs = workload(n=120)
        result, summary = run_config(
            thin_spec(reach="rack"), jobs,
            placement=placement,
            penalty={"kind": "linear", "beta": 0.3},
            class_local_mem=512 * GiB,
        )
        assert summary.jobs_completed > 80

    @pytest.mark.parametrize("reach", ["global", "rack"])
    def test_reaches(self, reach):
        jobs = workload(n=120)
        _, summary = run_config(
            thin_spec(reach=reach), jobs,
            penalty={"kind": "linear", "beta": 0.3},
            class_local_mem=512 * GiB,
        )
        assert summary.jobs_completed > 80

    def test_hybrid_reach(self):
        # Hand-build rack + global pools.
        spec = ClusterSpec.from_dict({
            "name": "hybrid",
            "num_nodes": NODES,
            "nodes_per_rack": 8,
            "node": {"local_mem": 128 * GiB},
            "pool": {"rack_pool": 1536 * GiB, "global_pool": 6 * 1024 * GiB},
        })
        jobs = workload(n=120)
        _, summary = run_config(
            spec, jobs, penalty={"kind": "linear", "beta": 0.3},
            class_local_mem=512 * GiB,
        )
        assert summary.jobs_completed > 80

    @pytest.mark.parametrize("gate", ["always", "pressure", "adaptive"])
    def test_gates_with_contention(self, gate):
        spec = ClusterSpec.from_dict({
            "name": "contended",
            "num_nodes": NODES,
            "nodes_per_rack": 8,
            "node": {"local_mem": 128 * GiB},
            "pool": {"global_pool": 6 * 1024 * GiB,
                     "global_bandwidth": float(3 * 1024 * GiB)},
        })
        jobs = workload(n=120)
        _, summary = run_config(
            spec, jobs, gate=gate,
            penalty={"kind": "contention", "beta": 0.3, "kappa": 2.0,
                     "threshold": 0.5},
            class_local_mem=512 * GiB,
        )
        # Liveness: gating never wedges the queue.
        assert summary.jobs_completed + summary.jobs_killed \
            + summary.jobs_rejected == 120

    @pytest.mark.parametrize("kill", ["strict", "dilation_aware", "none"])
    def test_kill_policies(self, kill):
        jobs = workload(n=120)
        result, summary = run_config(
            thin_spec(), jobs, kill_policy=kill,
            penalty={"kind": "linear", "beta": 0.5},
            class_local_mem=512 * GiB,
        )
        if kill == "strict":
            # Dilated jobs overrun their (unscaled) walltime sometimes.
            assert summary.jobs_killed >= 0
        if kill == "none":
            assert summary.jobs_killed == 0


class TestCrossConfigurationShapes:
    """Relationships that must hold between configurations."""

    def test_backfill_beats_no_backfill(self):
        jobs = workload(n=200, load=1.1)
        _, easy = run_config(thin_spec(), jobs, backfill="easy",
                             penalty="none", class_local_mem=512 * GiB)
        _, none = run_config(thin_spec(), jobs, backfill="none",
                             penalty="none", class_local_mem=512 * GiB)
        assert easy.wait["mean"] < none.wait["mean"]

    def test_zero_penalty_thin_full_pool_close_to_fat(self):
        """With no dilation penalty and the full removed DRAM returned
        as a global pool, thin nodes serve the same workload with wait
        in the same ballpark as the fat baseline (pool statistical
        multiplexing can even win)."""
        jobs = workload(n=200)
        _, fat = run_config(fat_spec(), jobs, penalty="none",
                            class_local_mem=512 * GiB)
        _, thin = run_config(thin_spec(fraction=1.0), jobs, penalty="none",
                             class_local_mem=512 * GiB)
        assert thin.wait["mean"] <= max(2.0 * fat.wait["mean"], 600.0)

    def test_more_pool_never_rejects_more(self):
        jobs = workload(name="W-DATA", n=150)
        _, small = run_config(thin_spec(fraction=0.25), jobs, penalty="none",
                              class_local_mem=512 * GiB)
        _, large = run_config(thin_spec(fraction=1.0), jobs, penalty="none",
                              class_local_mem=512 * GiB)
        assert large.jobs_rejected <= small.jobs_rejected

    def test_higher_penalty_worse_response(self):
        jobs = workload(name="W-DATA", n=150)
        responses = []
        for beta in (0.0, 0.8):
            _, summary = run_config(
                thin_spec(), jobs,
                penalty={"kind": "linear", "beta": beta},
                class_local_mem=512 * GiB,
            )
            responses.append(summary.response["mean"])
        assert responses[0] < responses[1]

    def test_fat_node_strands_more_than_thin(self):
        jobs = workload(name="W-COMP", n=200)
        _, fat = run_config(fat_spec(), jobs, penalty="none",
                            class_local_mem=512 * GiB)
        _, thin = run_config(thin_spec(), jobs, penalty="none",
                             class_local_mem=512 * GiB)
        assert fat.stranded_fraction > thin.stranded_fraction

    def test_load_scaling_increases_wait(self):
        jobs = workload(n=200, load=0.7)
        hot = scale_load(jobs, 1.8)
        _, cool = run_config(thin_spec(), jobs, penalty="none",
                             class_local_mem=512 * GiB)
        _, heated = run_config(thin_spec(), hot, penalty="none",
                               class_local_mem=512 * GiB)
        assert heated.wait["mean"] > cool.wait["mean"]


class TestSplitPolicies:
    def test_fixed_ratio_split_audits_clean(self):
        jobs = workload(n=100)
        scheduler = Scheduler(
            split_policy=FixedRatioSplit(local_ratio=0.5),
        )
        result, summary = run_config(
            thin_spec(), jobs, scheduler=scheduler,
            class_local_mem=512 * GiB,
        )
        # Every job now has a remote share (even small ones).
        ran = [j for j in result.jobs if j.state is JobState.COMPLETED]
        assert any(j.remote_per_node > 0 and j.mem_per_node < 128 * GiB
                   for j in ran)

    def test_headroom_reduces_local_share(self):
        jobs = workload(n=100)
        scheduler = Scheduler(split_policy=LocalFirstSplit(headroom=16 * GiB))
        result, _ = run_config(thin_spec(), jobs, scheduler=scheduler,
                               class_local_mem=512 * GiB)
        ran = [j for j in result.jobs if j.state is JobState.COMPLETED]
        assert all(j.local_grant_per_node <= 112 * GiB for j in ran)


class TestStress:
    def test_larger_workload_audits_clean(self):
        jobs = workload(n=500, load=1.0)
        result, summary = run_config(
            thin_spec(), jobs,
            penalty={"kind": "linear", "beta": 0.3},
            class_local_mem=512 * GiB,
        )
        assert summary.jobs_completed + summary.jobs_killed \
            + summary.jobs_rejected == 500

    def test_burst_arrivals(self):
        # Everyone arrives at t=0: worst-case queue depth.
        jobs = workload(n=150)
        for job in jobs:
            job.submit_time = 0.0
        result, summary = run_config(
            thin_spec(), jobs, penalty="none", class_local_mem=512 * GiB,
        )
        assert summary.jobs_completed + summary.jobs_rejected == 150

    def test_single_node_cluster(self):
        spec = ClusterSpec.from_dict({
            "num_nodes": 1, "nodes_per_rack": 1,
            "node": {"local_mem": 16 * GiB},
            "pool": {"global_pool": 16 * GiB},
        })
        jobs = generate_reference_jobs(
            "W-COMP", seed=3, num_jobs=50, cluster_nodes=1,
            max_mem_per_node=32 * GiB, target_load=0.5,
        )
        _, summary = run_config(spec, jobs, penalty="none")
        assert summary.jobs_completed + summary.jobs_killed \
            + summary.jobs_rejected == 50

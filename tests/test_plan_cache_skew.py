"""Targeted suite for the per-node plan-cache bound.

The early-finish skew regime — realized runtime far below the walltime
request — is where the reservation plan cache's *time* horizon breaks
down: every completion fold removes a release whose estimated end sits
far in the future, the probe cap balloons past every cached
reservation start, and pre-PR-4 code recomputed the whole standing
plan each pass.  The per-node bound keeps replay alive there: folds
free a *bounded number of nodes*, and an entry whose scan rejected
every earlier breakpoint with head-room below the job's demand resumes
at its cached start instead.

These tests pin both halves of the contract:

* decisions match the golden digests in
  ``tests/golden/plan_cache_skew.json`` (baselined from runs verified
  against the pre-index reference pass) — the bound is pure
  acceleration;
* the per-node resume path actually fires in the skew regime (via the
  strategy's ``replay_stats`` counters), so the regression target of
  the ROADMAP item stays covered by an assertion, not a benchmark.
"""

from __future__ import annotations

import random
import zlib

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec, PoolSpec
from repro.engine.simulation import SchedulerSimulation
from repro.sched.base import build_scheduler
from repro.units import GiB, HOUR
from repro.workload import Job

from ._golden import assert_matches_golden

GOLDEN = "plan_cache_skew"


def _spec() -> ClusterSpec:
    return ClusterSpec(
        name="skew", num_nodes=16, nodes_per_rack=8,
        node=NodeSpec(cores=8, local_mem=16 * GiB),
        pool=PoolSpec(global_pool=128 * GiB),
    )


def _skewed_jobs(rng: random.Random, num_jobs: int = 40,
                 skew: float = 0.05, wide_fraction: float = 0.3):
    """Walltime-padded jobs: realized runtime is ``skew`` of the
    request, so completion folds carry horizons ~20x past the actual
    release times.  A slice of wide jobs keeps deep reservations
    standing (the entries whose replay the bound protects)."""
    jobs = []
    t = 0.0
    for job_id in range(1, num_jobs + 1):
        t += rng.expovariate(1.0 / 250.0)
        walltime = rng.uniform(2 * HOUR, 8 * HOUR)
        wide = rng.random() < wide_fraction
        jobs.append(Job(
            job_id=job_id,
            submit_time=round(t, 3),
            nodes=rng.randint(8, 14) if wide else rng.randint(1, 4),
            walltime=walltime,
            runtime=max(60.0, walltime * rng.uniform(skew * 0.5, skew * 1.5)),
            mem_per_node=rng.choice((4, 8, 16, 24)) * GiB,
            user=f"user{rng.randint(0, 3)}",
        ))
    return jobs


def _rng(token: str) -> random.Random:
    return random.Random(zlib.crc32(token.encode()))


def _run_skew(token: str, **kwargs):
    """Run the optimized stack, pin its digest, return replay stats."""
    rng = _rng(token)
    jobs = _skewed_jobs(rng, **kwargs)
    sched = build_scheduler(
        backfill="conservative", penalty={"kind": "linear", "beta": 0.3}
    )
    result = SchedulerSimulation(
        Cluster(_spec()), sched, [j.copy_request() for j in jobs]
    ).run()
    assert_matches_golden(GOLDEN, token, result)
    return sched.backfill.replay_stats


def golden_cases():
    """Every case in this suite, for tools/gen_golden.py."""

    def case(token, **jobs_kwargs):
        jobs = _skewed_jobs(_rng(token), **jobs_kwargs)

        def run():
            sched = build_scheduler(
                backfill="conservative",
                penalty={"kind": "linear", "beta": 0.3},
            )
            return SchedulerSimulation(
                Cluster(_spec()), sched, [j.copy_request() for j in jobs]
            ).run()

        return token, run

    for seed in range(12):
        yield case(f"skew-{seed}")
    for seed in range(6):
        yield case(f"skew-extreme-{seed}", skew=0.02)
    for seed in range(6):
        yield case(f"skew-fire-{seed}")


class TestPlanCacheSkew:
    @pytest.mark.parametrize("seed", range(12))
    def test_skewed_workloads_match_golden(self, seed):
        """runtime ≪ walltime: decisions must match the pinned
        baseline exactly while the fold horizon sits far past every
        cached start."""
        _run_skew(f"skew-{seed}")

    @pytest.mark.parametrize("seed", range(6))
    def test_extreme_skew_matches_golden(self, seed):
        """2% realized runtime — essentially every fold pushes the
        time horizon across the whole standing plan."""
        _run_skew(f"skew-extreme-{seed}", skew=0.02)

    def test_per_node_resume_fires_in_skew_regime(self):
        """The regression target itself: under early-finish skew the
        per-node bound must recover replays the time horizon alone
        would have recomputed."""
        fired = 0
        for seed in range(6):
            stats = _run_skew(f"skew-fire-{seed}")
            fired += stats["per_node"]
        assert fired > 0, (
            "per-node replay bound never fired on skewed workloads — "
            "the ROADMAP regression this suite guards has returned"
        )

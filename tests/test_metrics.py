"""Tests for the metrics layer: time series, job frames, system stats,
summaries, and report rendering."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.cluster import Cluster, ClusterSpec, NodeSpec, PoolSpec
from repro.engine import SchedulerSimulation
from repro.memdis import LinearPenalty, NoPenalty
from repro.metrics import (
    aggregate,
    ascii_table,
    collect_jobs,
    compute_system_stats,
    resample_step,
    rows_to_csv,
    step_integral,
    step_series_from_jobs,
    summarize,
)
from repro.metrics.report import series_table
from repro.metrics.summary import memory_class_of
from repro.sched import Scheduler
from repro.units import GiB
from repro.workload import JobState

from .conftest import make_job


def finished_job(job_id, submit, start, runtime, nodes=1, mem=4 * GiB,
                 mem_used=None, dilation=0.0, killed=False, tag=""):
    job = make_job(job_id=job_id, submit=submit, nodes=nodes,
                   walltime=runtime * 2, runtime=runtime, mem=mem,
                   mem_used=mem_used, tag=tag)
    job.state = JobState.KILLED if killed else JobState.COMPLETED
    job.start_time = start
    job.end_time = start + runtime * (1 + dilation)
    job.assigned_nodes = list(range(nodes))
    job.local_grant_per_node = mem
    job.dilation = dilation
    return job


class TestStepSeries:
    def test_series_from_jobs(self):
        jobs = [
            finished_job(1, submit=0.0, start=0.0, runtime=100.0, nodes=2),
            finished_job(2, submit=0.0, start=50.0, runtime=100.0, nodes=3),
        ]
        times, values = step_series_from_jobs(jobs, lambda j: float(j.nodes))
        assert list(times) == [0.0, 50.0, 100.0, 150.0]
        assert list(values) == [2.0, 5.0, 3.0, 0.0]

    def test_series_merges_simultaneous_events(self):
        jobs = [
            finished_job(1, submit=0.0, start=0.0, runtime=100.0, nodes=2),
            finished_job(2, submit=0.0, start=100.0, runtime=50.0, nodes=2),
        ]
        times, values = step_series_from_jobs(jobs, lambda j: float(j.nodes))
        # End of job 1 and start of job 2 at t=100 net to zero change.
        assert list(times) == [0.0, 100.0, 150.0]
        assert list(values) == [2.0, 2.0, 0.0]

    def test_empty_series(self):
        times, values = step_series_from_jobs([], lambda j: 1.0)
        assert len(times) == 0
        assert step_integral(times, values, 0.0, 100.0) == 0.0

    def test_step_integral_exact(self):
        times = np.array([0.0, 10.0, 20.0])
        values = np.array([1.0, 3.0, 0.0])
        assert step_integral(times, values, 0.0, 20.0) == pytest.approx(40.0)
        # Clipped window.
        assert step_integral(times, values, 5.0, 15.0) == pytest.approx(
            5 * 1.0 + 5 * 3.0
        )
        # Level extends beyond the last breakpoint.
        times2 = np.array([0.0])
        values2 = np.array([2.0])
        assert step_integral(times2, values2, 0.0, 50.0) == pytest.approx(100.0)

    def test_step_integral_degenerate_window(self):
        assert step_integral([0.0], [1.0], 10.0, 10.0) == 0.0
        assert step_integral([0.0], [1.0], 10.0, 5.0) == 0.0

    def test_resample(self):
        times = np.array([10.0, 20.0])
        values = np.array([5.0, 7.0])
        out = resample_step(times, values, [0.0, 10.0, 15.0, 25.0])
        assert list(out) == [0.0, 5.0, 5.0, 7.0]

    @given(
        st.lists(
            st.tuples(st.floats(0, 1000, allow_nan=False),
                      st.floats(1, 100, allow_nan=False),
                      st.integers(1, 8)),
            min_size=1, max_size=30,
        )
    )
    def test_property_integral_equals_sum_of_node_seconds(self, rows):
        jobs = [
            finished_job(i + 1, submit=0.0, start=start, runtime=dur,
                         nodes=nodes)
            for i, (start, dur, nodes) in enumerate(rows)
        ]
        times, values = step_series_from_jobs(jobs, lambda j: float(j.nodes))
        t0 = min(j.start_time for j in jobs)
        t1 = max(j.end_time for j in jobs)
        integral = step_integral(times, values, t0, t1)
        expected = sum(j.nodes * (j.end_time - j.start_time) for j in jobs)
        assert integral == pytest.approx(expected, rel=1e-9)


class TestJobFrame:
    def make_frame(self):
        jobs = [
            finished_job(1, submit=0.0, start=10.0, runtime=100.0, tag="a"),
            finished_job(2, submit=5.0, start=10.0, runtime=200.0, tag="b",
                         killed=True),
            finished_job(3, submit=0.0, start=0.0, runtime=5.0, tag="a"),
        ]
        pending = make_job(job_id=4, submit=0.0)
        return collect_jobs(jobs + [pending])

    def test_excludes_unfinished(self):
        frame = self.make_frame()
        assert len(frame) == 3
        assert 4 not in frame.job_ids

    def test_wait_and_response(self):
        frame = self.make_frame()
        assert list(frame.wait) == [10.0, 5.0, 0.0]
        assert frame.response[0] == pytest.approx(110.0)

    def test_bounded_slowdown_floor_and_tau(self):
        frame = self.make_frame()
        # Job 3: runtime 5 < tau -> denominator 10; response 5 -> bsld 1.
        assert frame.bounded_slowdown[2] == 1.0
        # Job 1: response 110 / runtime 100 = 1.1.
        assert frame.bounded_slowdown[0] == pytest.approx(1.1)

    def test_killed_mask(self):
        frame = self.make_frame()
        assert list(frame.killed) == [False, True, False]

    def test_mask_and_by_tag(self):
        frame = self.make_frame()
        tagged = frame.by_tag()
        assert set(tagged) == {"a", "b"}
        assert len(tagged["a"]) == 2
        assert list(tagged["a"].job_ids) == [1, 3]

    def test_aggregate(self):
        stats = aggregate([1.0, 2.0, 3.0, 10.0])
        assert stats["mean"] == 4.0
        assert stats["median"] == 2.5
        assert stats["max"] == 10.0
        assert aggregate([]) == {"mean": 0.0, "median": 0.0, "p95": 0.0, "max": 0.0}


class TestSystemStats:
    def run_simple(self):
        spec = ClusterSpec(
            num_nodes=2, nodes_per_rack=2,
            node=NodeSpec(local_mem=16 * GiB),
            pool=PoolSpec(global_pool=8 * GiB),
        )
        cluster = Cluster(spec)
        jobs = [
            make_job(job_id=1, submit=0.0, nodes=2, runtime=100.0,
                     walltime=100.0, mem=20 * GiB, mem_used=18 * GiB),
        ]
        return SchedulerSimulation(
            cluster, Scheduler(penalty=NoPenalty()), jobs
        ).run()

    def test_full_occupancy_run(self):
        result = self.run_simple()
        stats = compute_system_stats(result)
        assert stats.node_utilization == pytest.approx(1.0)
        # Local grant = 16 GiB/node (full) for whole horizon.
        assert stats.local_mem_granted_util == pytest.approx(1.0)
        # Used locally: 16 of 16 (usage fills local first: 18 >= 16).
        assert stats.local_mem_used_util == pytest.approx(1.0)
        # Pool: 4 GiB/node * 2 nodes = 8 GiB of 8 GiB pool.
        assert stats.pool_utilization == pytest.approx(1.0)
        assert stats.completed == 1

    def test_stranding_on_fat_node(self):
        spec = ClusterSpec(
            num_nodes=2, nodes_per_rack=2,
            node=NodeSpec(local_mem=64 * GiB),
        )
        cluster = Cluster(spec)
        jobs = [
            make_job(job_id=1, submit=0.0, nodes=2, runtime=100.0,
                     walltime=100.0, mem=16 * GiB, mem_used=8 * GiB),
        ]
        result = SchedulerSimulation(
            cluster, Scheduler(penalty=NoPenalty()), jobs
        ).run()
        stats = compute_system_stats(result)
        # Used 8 GiB of 64 GiB per node -> 12.5% used, 87.5% stranded.
        assert stats.local_mem_used_util == pytest.approx(0.125)
        assert stats.stranded_fraction == pytest.approx(0.875)

    def test_half_idle_machine(self):
        spec = ClusterSpec(num_nodes=2, nodes_per_rack=2,
                           node=NodeSpec(local_mem=16 * GiB))
        cluster = Cluster(spec)
        jobs = [make_job(job_id=1, submit=0.0, nodes=1, runtime=100.0,
                         walltime=100.0, mem=16 * GiB)]
        result = SchedulerSimulation(
            cluster, Scheduler(penalty=NoPenalty()), jobs
        ).run()
        stats = compute_system_stats(result)
        assert stats.node_utilization == pytest.approx(0.5)
        assert stats.delivered_node_hours == pytest.approx(100.0 / 3600)


class TestSummary:
    def test_memory_class_of(self):
        local = 16 * GiB
        assert memory_class_of(4 * GiB, local) == "light"
        assert memory_class_of(8 * GiB, local) == "light"
        assert memory_class_of(12 * GiB, local) == "mid"
        assert memory_class_of(16 * GiB, local) == "mid"
        assert memory_class_of(20 * GiB, local) == "heavy"

    def test_summarize_end_to_end(self):
        spec = ClusterSpec(
            num_nodes=2, nodes_per_rack=2,
            node=NodeSpec(local_mem=16 * GiB),
            pool=PoolSpec(global_pool=8 * GiB),
        )
        cluster = Cluster(spec)
        jobs = [
            make_job(job_id=1, submit=0.0, nodes=1, runtime=100.0,
                     walltime=100.0, mem=20 * GiB, tag="data"),
            make_job(job_id=2, submit=0.0, nodes=1, runtime=50.0,
                     walltime=100.0, mem=4 * GiB, tag="compute"),
        ]
        result = SchedulerSimulation(
            cluster, Scheduler(penalty=LinearPenalty(0.5)), jobs
        ).run()
        summary = summarize(result, label="test-run")
        assert summary.label == "test-run"
        assert summary.jobs_completed == 2
        assert summary.wait["mean"] == 0.0
        assert "heavy" in summary.by_class
        assert "light" in summary.by_class
        assert summary.by_tag["data"]["jobs"] == 1.0
        assert summary.mean_dilation > 0.0
        row = summary.row()
        assert row["label"] == "test-run"
        assert row["completed"] == 2

    def test_class_reference_override(self):
        spec = ClusterSpec(num_nodes=2, nodes_per_rack=2,
                           node=NodeSpec(local_mem=64 * GiB))
        cluster = Cluster(spec)
        jobs = [make_job(job_id=1, submit=0.0, nodes=1, runtime=10.0,
                         walltime=20.0, mem=40 * GiB)]
        result = SchedulerSimulation(
            cluster, Scheduler(penalty=NoPenalty()), jobs
        ).run()
        own = summarize(result)  # 40 GiB vs 64 GiB local -> mid
        assert "mid" in own.by_class
        other = summarize(result, class_local_mem=16 * GiB)  # -> heavy
        assert "heavy" in other.by_class


class TestReport:
    def test_ascii_table_alignment(self):
        table = ascii_table(
            ["name", "value"],
            [["alpha", 1.5], ["b", 123456.0]],
        )
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].endswith("value")
        # All rows have same width.
        assert len({len(line) for line in lines}) == 1

    def test_rows_to_csv(self):
        csv = rows_to_csv([
            {"a": 1, "b": 2},
            {"a": 3, "c": 4},
        ])
        lines = csv.strip().splitlines()
        assert lines[0] == "a,b,c"
        assert lines[1] == "1,2,"
        assert lines[2] == "3,,4"

    def test_rows_to_csv_empty(self):
        assert rows_to_csv([]) == ""

    def test_series_table(self):
        table = series_table("x", [1, 2], {"y1": [10, 20], "y2": [30, 40]})
        lines = table.splitlines()
        assert "y1" in lines[0] and "y2" in lines[0]
        assert len(lines) == 4

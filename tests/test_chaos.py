"""Chaos-harness tests: the crash gate itself, and real process death.

These are integration tests by design — the subprocess cases spawn an
actual ``repro serve`` daemon and deliver actual signals, because the
property under test ("SIGKILL loses nothing acknowledged") cannot be
faked convincingly in-process.
"""

from __future__ import annotations

import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.service.chaos import (
    CHAOS_SCHEDULERS,
    run_chaos,
    run_chaos_process,
)
from repro.service.client import ServiceClient


class TestInProcessGate:
    def test_gate_holds_across_seeds_and_schedulers(self, tmp_path):
        """The acceptance gate, shrunk to test size: every cell of
        seeds x {easy, conservative} recovers decision-identically."""
        report = run_chaos(
            seeds=(1, 2), num_jobs=24, state_root=tmp_path / "chaos"
        )
        assert report["ok"], [
            problem
            for cell in report["cells"]
            for problem in cell["problems"]
        ]
        assert len(report["cells"]) == 2 * len(CHAOS_SCHEDULERS)
        # Every cell actually crashed (a gate that never crashes
        # proves nothing) and the retried windows hit the dedup path.
        assert all(cell["crashes"] >= 1 for cell in report["cells"])
        assert any(cell["dedup_hits"] > 0 for cell in report["cells"])

    def test_report_is_json_able(self, tmp_path):
        import json

        out = tmp_path / "report.json"
        report = run_chaos(seeds=(1,), num_jobs=16, output=out)
        assert json.loads(out.read_text())["ok"] == report["ok"]


class TestProcessDeath:
    def test_sigkill_then_restart_is_identical(self):
        report = run_chaos_process(seed=5, num_jobs=24, kills=1)
        assert report["ok"], report["problems"]
        assert report["sigkills"] == 1
        assert report["final_recovery"]["resumed"]
        # The final daemon was SIGTERMed: graceful drain, exit 0.
        assert report["graceful_exit_code"] == 0

    def test_sigterm_drains_and_checkpoints(self, tmp_path):
        """SIGTERM is the graceful path: the daemon checkpoints and
        exits 0, and the restarted daemon resumes from the snapshot
        with zero journal records left to replay."""
        from repro.service.chaos import _spawn_daemon
        from repro.service.core import default_service_config

        config = default_service_config()
        config.workload = dict(config.workload, num_jobs=12)
        config_path = tmp_path / "experiment.json"
        config_path.write_text(config.to_json())
        state_dir = tmp_path / "state"

        process, url = _spawn_daemon(config_path, state_dir)
        with ServiceClient(url) as client:
            record = client.submit_one(
                {"nodes": 1, "walltime": 600.0, "mem_per_node": 4096}
            )
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=20.0) == 0

        revived, url = _spawn_daemon(config_path, state_dir)
        try:
            with ServiceClient(url) as client:
                recovery = client.metrics()["durability"]["recovery"]
                assert recovery["resumed"]
                assert recovery["replayed_records"] == 0
                assert recovery["snapshot_seq"] >= 1
                assert (
                    client.query(record["job_id"])["state"]
                    == record["state"]
                )
        finally:
            revived.send_signal(signal.SIGTERM)
            assert revived.wait(timeout=20.0) == 0

    def test_cli_chaos_quick(self, tmp_path):
        """``repro chaos --quick`` is what CI runs; exit 0 = gate held."""
        out = tmp_path / "CHAOS_REPORT.json"
        result = subprocess.run(
            [
                sys.executable, "-m", "repro.cli", "chaos",
                "--quick", "--skip-process", "--quiet",
                "--jobs", "16", "--out", str(out),
            ],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert out.exists()


class TestLoadExitCodes:
    def test_unreachable_daemon_exits_4(self):
        result = subprocess.run(
            [
                sys.executable, "-m", "repro.cli", "load",
                "--url", "http://127.0.0.1:1",  # nothing listens here
                "--quick", "--out", "",
            ],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 4
        assert "unreachable" in result.stderr

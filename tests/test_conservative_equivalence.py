"""Differential suite: interval-index conservative backfill vs pinned
golden baselines.

The reservation-aware interval index, the cross-cycle profile cache,
the release/start folding, and the reservation plan cache (per-job
resume points) are all required to be **decision-invisible**.  Each
simulation's full decision digest (schedule record, promises, cycle
count — see ``_golden.py``) must match the baseline pinned in
``tests/golden/conservative_equivalence.json``, which was generated
from runs verified against the preserved pre-index reservation-scan
pass before that reference code was retired.

Coverage is deliberately adversarial for the caches:

* queue policies that reorder between passes (sjf, wfp) and the
  stateful fair-share policy — exercising plan-cache order divergence;
* metered pools with and without start gates — pressure-dependent
  duration estimates go stale between passes, and gate vetoes plant
  at-now reservations the replay must refuse;
* ``kill_policy='none'`` with overrunning jobs — clamped releases make
  profiles unrebasable and folds refuse;
* node failure traces (drained machines, repairs, checkpoint
  restarts) — cluster mutations that bypass the release-fold path;
* quantized submit/walltime grids — same-instant event collisions;
* small reservation depth — queue-truncation boundaries.

Over 200 randomized end-to-end simulations are digest-pinned in total.
"""

from __future__ import annotations

import random
import zlib

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec, PoolSpec
from repro.engine.failures import FailureEvent
from repro.engine.simulation import SchedulerSimulation
from repro.sched.backfill import ConservativeBackfill
from repro.sched.base import build_scheduler
from repro.units import GiB, HOUR
from repro.workload import Job

from ._golden import assert_matches_golden

GOLDEN = "conservative_equivalence"

# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------


def _spec(kind: str) -> ClusterSpec:
    if kind == "thin-global":
        return ClusterSpec(
            name=kind, num_nodes=16, nodes_per_rack=8,
            node=NodeSpec(cores=8, local_mem=16 * GiB),
            pool=PoolSpec(global_pool=128 * GiB),
        )
    if kind == "thin-hybrid":
        return ClusterSpec(
            name=kind, num_nodes=16, nodes_per_rack=4,
            node=NodeSpec(cores=8, local_mem=16 * GiB),
            pool=PoolSpec(rack_pool=32 * GiB, global_pool=64 * GiB),
        )
    if kind == "metered":
        return ClusterSpec(
            name=kind, num_nodes=16, nodes_per_rack=8,
            node=NodeSpec(cores=8, local_mem=16 * GiB),
            pool=PoolSpec(global_pool=128 * GiB, global_bandwidth=64 * 1024.0),
        )
    raise AssertionError(kind)


def _jobs(rng: random.Random, num_jobs: int = 36, max_nodes: int = 12,
          quantized: bool = False, overrun: bool = False):
    jobs = []
    t = 0.0
    for job_id in range(1, num_jobs + 1):
        if quantized:
            # Coarse grids force same-instant submissions and
            # estimated-end collisions with reservation boundaries.
            t += rng.choice((0.0, 0.0, 300.0, 600.0, 900.0))
            walltime = rng.choice((600.0, 1200.0, 1800.0, 3600.0))
        else:
            t += rng.expovariate(1.0 / 400.0)
            walltime = rng.uniform(300.0, 6 * HOUR)
        high = 2.0 if overrun else 1.0
        jobs.append(Job(
            job_id=job_id,
            submit_time=round(t, 3),
            nodes=rng.randint(1, max_nodes),
            walltime=walltime,
            runtime=walltime * rng.uniform(0.2, high),
            mem_per_node=rng.choice((4, 8, 16, 24, 32)) * GiB,
            user=f"user{rng.randint(0, 3)}",
        ))
    return jobs


def _rng(token: str) -> random.Random:
    return random.Random(zlib.crc32(token.encode()))


def _scheduler(**kwargs):
    kwargs.setdefault("backfill", "conservative")
    kwargs.setdefault("penalty", {"kind": "linear", "beta": 0.3})
    return build_scheduler(**kwargs)


def _run(spec, jobs, scheduler, failures=()):
    return SchedulerSimulation(
        Cluster(spec), scheduler,
        [job.copy_request() for job in jobs], failures=list(failures),
    ).run()


# ----------------------------------------------------------------------
# the differential grid
# ----------------------------------------------------------------------


def _base_case(seed, queue, cluster_kind):
    token = f"cons-{seed}-{queue}-{cluster_kind}"
    jobs = _jobs(_rng(token))
    return token, lambda: _run(_spec(cluster_kind), jobs, _scheduler(queue=queue))


def _gated_case(seed, gate):
    token = f"cons-gate-{seed}-{gate}"
    jobs = _jobs(_rng(token))
    return token, lambda: _run(
        _spec("metered"), jobs,
        _scheduler(gate=gate,
                   penalty={"kind": "contention", "beta": 0.3, "kappa": 2.0}),
    )


def _metered_case(seed):
    token = f"cons-metered-{seed}"
    jobs = _jobs(_rng(token))
    return token, lambda: _run(
        _spec("metered"), jobs,
        _scheduler(penalty={"kind": "contention", "beta": 0.3, "kappa": 2.0}),
    )


def _fairshare_case(seed):
    token = f"cons-fs-{seed}"
    jobs = _jobs(_rng(token))
    return token, lambda: _run(
        _spec("thin-global"), jobs, _scheduler(queue="fairshare")
    )


def _overrun_case(seed, cluster_kind):
    token = f"cons-overrun-{seed}-{cluster_kind}"
    jobs = _jobs(_rng(token), overrun=True)
    return token, lambda: _run(
        _spec(cluster_kind), jobs, _scheduler(kill_policy="none")
    )


def _failure_case(seed):
    token = f"cons-fail-{seed}"
    rng = _rng(token)
    jobs = _jobs(rng)
    for job in jobs[::5]:
        job.checkpoint_interval = 600.0
    failures = [
        FailureEvent(
            time=rng.uniform(0.0, 8000.0),
            node_id=rng.randrange(16),
            repair_time=rng.uniform(500.0, 4000.0),
        )
        for _ in range(rng.randint(1, 4))
    ]
    return token, lambda: _run(
        _spec("thin-global"), jobs, _scheduler(), failures=failures
    )


def _grid_case(seed):
    token = f"cons-grid-{seed}"
    rng = _rng(token)
    jobs = _jobs(rng, quantized=True)
    queue = rng.choice(["fcfs", "sjf"])
    return token, lambda: _run(_spec("thin-global"), jobs, _scheduler(queue=queue))


def _depth_case(seed, depth):
    token = f"cons-depth-{seed}-{depth}"
    jobs = _jobs(_rng(token))

    def run():
        sched = _scheduler()
        sched.backfill = ConservativeBackfill(depth=depth)
        return _run(_spec("thin-hybrid"), jobs, sched)

    return token, run


def golden_cases():
    """Every case in this suite, for tools/gen_golden.py."""
    for seed in range(18):
        for queue in ("fcfs", "sjf", "wfp"):
            for cluster_kind in ("thin-global", "thin-hybrid"):
                yield _base_case(seed, queue, cluster_kind)
    for seed in range(10):
        for gate in ("pressure", "adaptive"):
            yield _gated_case(seed, gate)
    for seed in range(10):
        yield _metered_case(seed)
    for seed in range(10):
        yield _fairshare_case(seed)
    for seed in range(10):
        for cluster_kind in ("thin-global", "thin-hybrid"):
            yield _overrun_case(seed, cluster_kind)
    for seed in range(15):
        yield _failure_case(seed)
    for seed in range(10):
        yield _grid_case(seed)
    for seed in range(10):
        for depth in (1, 3):
            yield _depth_case(seed, depth)


class TestConservativeEquivalence:
    @pytest.mark.parametrize("seed", range(18))
    @pytest.mark.parametrize("queue", ["fcfs", "sjf", "wfp"])
    @pytest.mark.parametrize("cluster_kind", ["thin-global", "thin-hybrid"])
    def test_schedules_match_golden(self, seed, queue, cluster_kind):
        token, run = _base_case(seed, queue, cluster_kind)
        assert_matches_golden(GOLDEN, token, run())

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("gate", ["pressure", "adaptive"])
    def test_gated_metered_matches_golden(self, seed, gate):
        """Gate vetoes plant at-now reservations, and metered pools
        make duration estimates pressure-dependent — both must break
        the plan replay instead of corrupting it."""
        token, run = _gated_case(seed, gate)
        assert_matches_golden(GOLDEN, token, run())

    @pytest.mark.parametrize("seed", range(10))
    def test_metered_ungated_matches_golden(self, seed):
        token, run = _metered_case(seed)
        assert_matches_golden(GOLDEN, token, run())

    @pytest.mark.parametrize("seed", range(10))
    def test_fairshare_matches_golden(self, seed):
        """Fair-share order() keeps state; the plan cache must track
        the reordering it produces between passes."""
        token, run = _fairshare_case(seed)
        assert_matches_golden(GOLDEN, token, run())

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("cluster_kind", ["thin-global", "thin-hybrid"])
    def test_overrun_kill_none_matches_golden(self, seed, cluster_kind):
        """Overrunning jobs clamp releases; clamped profiles refuse
        rebase and folds, forcing the rebuild path every cycle."""
        token, run = _overrun_case(seed, cluster_kind)
        assert_matches_golden(GOLDEN, token, run())

    @pytest.mark.parametrize("seed", range(15))
    def test_drained_machine_matches_golden(self, seed):
        """Failures drain and repair nodes mid-run (and kill victims,
        some of which restart from checkpoints) — cluster mutations
        that invalidate every cache layer at once."""
        token, run = _failure_case(seed)
        assert_matches_golden(GOLDEN, token, run())

    @pytest.mark.parametrize("seed", range(10))
    def test_collision_grid_matches_golden(self, seed):
        """Quantized times: same-instant submissions, estimated ends
        landing exactly on other jobs' reservation boundaries."""
        token, run = _grid_case(seed)
        assert_matches_golden(GOLDEN, token, run())

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("depth", [1, 3])
    def test_shallow_depth_matches_golden(self, seed, depth):
        """Depth-truncated passes: the plan cache window must track
        the same prefix a full-depth reference would examine."""
        token, run = _depth_case(seed, depth)
        assert_matches_golden(GOLDEN, token, run())

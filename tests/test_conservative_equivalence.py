"""Differential suite: interval-index conservative backfill vs the
preserved reservation-scan path.

The reservation-aware interval index, the cross-cycle profile cache,
the release/start folding, and the reservation plan cache (per-job
resume points) are all required to be **decision-invisible**: every
simulation must produce bit-identical schedules, reservations
(promises), and cycle counts to the pre-index conservative pass kept
verbatim in ``_reference_conservative.py`` (which itself layers on the
``_reference_profile.py`` sweep equivalence anchor).

Coverage is deliberately adversarial for the caches:

* queue policies that reorder between passes (sjf, wfp) and the
  stateful fair-share policy — exercising plan-cache order divergence;
* metered pools with and without start gates — pressure-dependent
  duration estimates go stale between passes, and gate vetoes plant
  at-now reservations the replay must refuse;
* ``kill_policy='none'`` with overrunning jobs — clamped releases make
  profiles unrebasable and folds refuse;
* node failure traces (drained machines, repairs, checkpoint
  restarts) — cluster mutations that bypass the release-fold path;
* quantized submit/walltime grids — same-instant event collisions;
* small reservation depth — queue-truncation boundaries.

Over 200 randomized end-to-end simulations run both stacks in total.
"""

from __future__ import annotations

import random
import zlib

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec, PoolSpec
from repro.engine.failures import FailureEvent
from repro.engine.simulation import SchedulerSimulation
from repro.sched.backfill import ConservativeBackfill
from repro.sched.base import build_scheduler
from repro.units import GiB, HOUR
from repro.workload import Job

from ._reference_conservative import reference_conservative_scheduler

# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------


def _spec(kind: str) -> ClusterSpec:
    if kind == "thin-global":
        return ClusterSpec(
            name=kind, num_nodes=16, nodes_per_rack=8,
            node=NodeSpec(cores=8, local_mem=16 * GiB),
            pool=PoolSpec(global_pool=128 * GiB),
        )
    if kind == "thin-hybrid":
        return ClusterSpec(
            name=kind, num_nodes=16, nodes_per_rack=4,
            node=NodeSpec(cores=8, local_mem=16 * GiB),
            pool=PoolSpec(rack_pool=32 * GiB, global_pool=64 * GiB),
        )
    if kind == "metered":
        return ClusterSpec(
            name=kind, num_nodes=16, nodes_per_rack=8,
            node=NodeSpec(cores=8, local_mem=16 * GiB),
            pool=PoolSpec(global_pool=128 * GiB, global_bandwidth=64 * 1024.0),
        )
    raise AssertionError(kind)


def _jobs(rng: random.Random, num_jobs: int = 36, max_nodes: int = 12,
          quantized: bool = False, overrun: bool = False):
    jobs = []
    t = 0.0
    for job_id in range(1, num_jobs + 1):
        if quantized:
            # Coarse grids force same-instant submissions and
            # estimated-end collisions with reservation boundaries.
            t += rng.choice((0.0, 0.0, 300.0, 600.0, 900.0))
            walltime = rng.choice((600.0, 1200.0, 1800.0, 3600.0))
        else:
            t += rng.expovariate(1.0 / 400.0)
            walltime = rng.uniform(300.0, 6 * HOUR)
        high = 2.0 if overrun else 1.0
        jobs.append(Job(
            job_id=job_id,
            submit_time=round(t, 3),
            nodes=rng.randint(1, max_nodes),
            walltime=walltime,
            runtime=walltime * rng.uniform(0.2, high),
            mem_per_node=rng.choice((4, 8, 16, 24, 32)) * GiB,
            user=f"user{rng.randint(0, 3)}",
        ))
    return jobs


def _schedule_record(result):
    return [
        (
            job.job_id,
            job.state.value,
            job.start_time,
            job.end_time,
            tuple(job.assigned_nodes),
            tuple(sorted(job.pool_grants.items())),
            job.dilation,
        )
        for job in sorted(result.jobs, key=lambda j: j.job_id)
    ]


def _run_pair(spec, jobs, new_sched, ref_sched, failures=()):
    new_result = SchedulerSimulation(
        Cluster(spec), new_sched,
        [job.copy_request() for job in jobs], failures=list(failures),
    ).run()
    ref_result = SchedulerSimulation(
        Cluster(spec), ref_sched,
        [job.copy_request() for job in jobs], failures=list(failures),
    ).run()
    assert _schedule_record(new_result) == _schedule_record(ref_result)
    assert new_result.promises == ref_result.promises
    assert new_result.cycles == ref_result.cycles
    return new_result


def _pair_for(seed_token: str, **kwargs):
    kwargs.setdefault("backfill", "conservative")
    kwargs.setdefault("penalty", {"kind": "linear", "beta": 0.3})
    new_sched = build_scheduler(**kwargs)
    ref_kwargs = dict(kwargs)
    ref_sched = reference_conservative_scheduler(**ref_kwargs)
    return new_sched, ref_sched


def _rng(token: str) -> random.Random:
    return random.Random(zlib.crc32(token.encode()))


# ----------------------------------------------------------------------
# the differential grid
# ----------------------------------------------------------------------


class TestConservativeEquivalence:
    @pytest.mark.parametrize("seed", range(18))
    @pytest.mark.parametrize("queue", ["fcfs", "sjf", "wfp"])
    @pytest.mark.parametrize("cluster_kind", ["thin-global", "thin-hybrid"])
    def test_schedules_identical(self, seed, queue, cluster_kind):
        token = f"cons-{seed}-{queue}-{cluster_kind}"
        rng = _rng(token)
        jobs = _jobs(rng)
        new_sched, ref_sched = _pair_for(token, queue=queue)
        _run_pair(_spec(cluster_kind), jobs, new_sched, ref_sched)

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("gate", ["pressure", "adaptive"])
    def test_gated_metered_identical(self, seed, gate):
        """Gate vetoes plant at-now reservations, and metered pools
        make duration estimates pressure-dependent — both must break
        the plan replay instead of corrupting it."""
        token = f"cons-gate-{seed}-{gate}"
        rng = _rng(token)
        jobs = _jobs(rng)
        new_sched, ref_sched = _pair_for(
            token, gate=gate,
            penalty={"kind": "contention", "beta": 0.3, "kappa": 2.0},
        )
        _run_pair(_spec("metered"), jobs, new_sched, ref_sched)

    @pytest.mark.parametrize("seed", range(10))
    def test_metered_ungated_identical(self, seed):
        token = f"cons-metered-{seed}"
        rng = _rng(token)
        jobs = _jobs(rng)
        new_sched, ref_sched = _pair_for(
            token, penalty={"kind": "contention", "beta": 0.3, "kappa": 2.0},
        )
        _run_pair(_spec("metered"), jobs, new_sched, ref_sched)

    @pytest.mark.parametrize("seed", range(10))
    def test_fairshare_identical(self, seed):
        """Fair-share order() keeps state; the plan cache must track
        the reordering it produces between passes."""
        token = f"cons-fs-{seed}"
        rng = _rng(token)
        jobs = _jobs(rng)
        new_sched, ref_sched = _pair_for(token, queue="fairshare")
        _run_pair(_spec("thin-global"), jobs, new_sched, ref_sched)

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("cluster_kind", ["thin-global", "thin-hybrid"])
    def test_overrun_kill_none_identical(self, seed, cluster_kind):
        """Overrunning jobs clamp releases; clamped profiles refuse
        rebase and folds, forcing the rebuild path every cycle."""
        token = f"cons-overrun-{seed}-{cluster_kind}"
        rng = _rng(token)
        jobs = _jobs(rng, overrun=True)
        new_sched, ref_sched = _pair_for(token, kill_policy="none")
        _run_pair(_spec(cluster_kind), jobs, new_sched, ref_sched)

    @pytest.mark.parametrize("seed", range(15))
    def test_drained_machine_identical(self, seed):
        """Failures drain and repair nodes mid-run (and kill victims,
        some of which restart from checkpoints) — cluster mutations
        that invalidate every cache layer at once."""
        token = f"cons-fail-{seed}"
        rng = _rng(token)
        jobs = _jobs(rng)
        for job in jobs[:: 5]:
            job.checkpoint_interval = 600.0
        failures = [
            FailureEvent(
                time=rng.uniform(0.0, 8000.0),
                node_id=rng.randrange(16),
                repair_time=rng.uniform(500.0, 4000.0),
            )
            for _ in range(rng.randint(1, 4))
        ]
        new_sched, ref_sched = _pair_for(token)
        _run_pair(_spec("thin-global"), jobs, new_sched, ref_sched,
                  failures=failures)

    @pytest.mark.parametrize("seed", range(10))
    def test_collision_grid_identical(self, seed):
        """Quantized times: same-instant submissions, estimated ends
        landing exactly on other jobs' reservation boundaries."""
        token = f"cons-grid-{seed}"
        rng = _rng(token)
        jobs = _jobs(rng, quantized=True)
        new_sched, ref_sched = _pair_for(token, queue=rng.choice(
            ["fcfs", "sjf"]))
        _run_pair(_spec("thin-global"), jobs, new_sched, ref_sched)

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("depth", [1, 3])
    def test_shallow_depth_identical(self, seed, depth):
        """Depth-truncated passes: the plan cache window must track
        the same prefix the reference examines."""
        token = f"cons-depth-{seed}-{depth}"
        rng = _rng(token)
        jobs = _jobs(rng)
        new_sched = build_scheduler(
            backfill="conservative", penalty={"kind": "linear", "beta": 0.3}
        )
        new_sched.backfill = ConservativeBackfill(depth=depth)
        ref_sched = reference_conservative_scheduler(
            depth=depth, penalty={"kind": "linear", "beta": 0.3}
        )
        _run_pair(_spec("thin-hybrid"), jobs, new_sched, ref_sched)

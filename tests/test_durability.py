"""Service durability tests: crash recovery, idempotency, degradation.

The crash model throughout is SIGKILL-equivalent: the journal has been
fsynced (that happens once per drain, before any op is acknowledged)
but nothing else survives — no final checkpoint, no in-memory state.
``crash()`` simulates exactly that by suppressing the shutdown
checkpoint; recovery must then come purely from snapshot + journal
replay through :meth:`SchedulerService.open`.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.config import ExperimentConfig
from repro.service import (
    SchedulerService,
    ServiceClient,
    ServiceConfig,
    ServiceDaemon,
    ServiceError,
)
from repro.service.core import default_service_config
from repro.service.journal import JournalError
from repro.service.load import compare_records
from repro.service.protocol import ProtocolError
from repro.units import GiB


def small_config(num_jobs: int = 40, **scheduler) -> ExperimentConfig:
    config = default_service_config()
    config.workload = dict(config.workload, num_jobs=num_jobs)
    if scheduler:
        config.scheduler = dict(config.scheduler, **scheduler)
    return config


def durable_config(tmp_path, **overrides) -> ServiceConfig:
    settings = {"mode": "replay", "state_dir": str(tmp_path / "state")}
    settings.update(overrides)
    return ServiceConfig(**settings)


SPEC = {"nodes": 1, "walltime": 600.0, "runtime": 300.0, "mem_per_node": 4 * GiB}


def crash(service: SchedulerService) -> None:
    """Stop the engine thread as if the process had been SIGKILLed.

    The final checkpoint is suppressed, so everything the reopened
    service knows must come from the write-ahead journal (plus any
    mid-run snapshot the cadence already produced).
    """
    service._final_checkpoint = lambda: None  # type: ignore[method-assign]
    service.stop()


def drive(service: SchedulerService, jobs: int = 6) -> dict:
    """Push a deterministic little workload; return records by job id."""
    records = {}
    for index in range(jobs):
        spec = dict(SPEC, submit_time=float(10 * index))
        service.advance(float(10 * index))
        (record,) = service.submit([spec], idempotency_key=f"job-{index}")
        records[record["job_id"]] = record
    return records


class TestCrashRecovery:
    def test_journal_only_recovery_is_identical(self, tmp_path):
        """Kill with NO snapshot ever written: replay must rebuild the
        whole run and report byte-identical records."""
        experiment = small_config()
        svc_config = durable_config(tmp_path, checkpoint_every=0)
        service = SchedulerService.open(experiment, svc_config).start()
        before = drive(service)
        service.advance(200.0)
        before = {jid: service.query(jid) for jid in before}
        crash(service)

        recovered = SchedulerService.open(experiment, svc_config)
        assert recovered.recovery["resumed"]
        assert recovered.recovery["snapshot_seq"] == 0
        assert recovered.recovery["replayed_records"] > 0
        with recovered:
            after = {jid: recovered.query(jid) for jid in before}
        for jid in before:
            live, rec = dict(before[jid]), dict(after[jid])
            live.pop("service", None), rec.pop("service", None)
            assert rec == live, f"job {jid} diverged across recovery"

    def test_snapshot_plus_suffix_recovery(self, tmp_path):
        """With an aggressive checkpoint cadence, recovery restores the
        newest snapshot and replays only the journal suffix."""
        experiment = small_config(backfill="conservative")
        svc_config = durable_config(tmp_path, checkpoint_every=2)
        service = SchedulerService.open(experiment, svc_config).start()
        before = drive(service, jobs=8)
        service.advance(500.0)
        before = {jid: service.query(jid) for jid in before}
        crash(service)

        recovered = SchedulerService.open(experiment, svc_config)
        assert recovered.recovery["snapshot_seq"] > 0
        with recovered:
            after = {jid: recovered.query(jid) for jid in before}
            # The recovered engine keeps scheduling: drain to terminal
            # states to prove the restored event calendar is live.
            recovered.advance(None)
            drained = {jid: recovered.query(jid) for jid in before}
        for jid in before:
            assert after[jid]["state"] == before[jid]["state"]
            assert after[jid]["start_time"] == before[jid]["start_time"]
            assert drained[jid]["state"] in ("completed", "killed")

    def test_recovered_service_continues_id_space(self, tmp_path):
        experiment = small_config()
        svc_config = durable_config(tmp_path)
        service = SchedulerService.open(experiment, svc_config).start()
        ids = {r["job_id"] for r in service.submit([dict(SPEC)] * 3)}
        crash(service)
        recovered = SchedulerService.open(experiment, svc_config)
        with recovered:
            (record,) = recovered.submit([dict(SPEC)])
        assert record["job_id"] not in ids
        assert record["job_id"] == max(ids) + 1

    def test_graceful_stop_checkpoints_everything(self, tmp_path):
        """A clean stop() writes a final snapshot: the reopened service
        replays zero journal records."""
        experiment = small_config()
        svc_config = durable_config(tmp_path, checkpoint_every=0)
        service = SchedulerService.open(experiment, svc_config)
        with service:
            drive(service)
        # Ordinary stop — the graceful path, not crash().
        recovered = SchedulerService.open(experiment, svc_config)
        assert recovered.recovery["replayed_records"] == 0
        assert recovered.recovery["snapshot_seq"] > 0
        assert recovered.recovery["resumed"]

    def test_mismatched_experiment_refused(self, tmp_path):
        svc_config = durable_config(tmp_path)
        service = SchedulerService.open(small_config(), svc_config).start()
        service.submit([dict(SPEC)])
        crash(service)
        with pytest.raises(JournalError, match="different configuration"):
            SchedulerService.open(small_config(backfill="conservative"), svc_config)

    def test_cancel_survives_recovery(self, tmp_path):
        experiment = small_config()
        svc_config = durable_config(tmp_path, checkpoint_every=0)
        service = SchedulerService.open(experiment, svc_config).start()
        blocker = dict(SPEC, nodes=32, walltime=5000.0, runtime=5000.0)
        (running,) = service.submit([blocker])
        (waiting,) = service.submit([dict(SPEC)])
        service.cancel(waiting["job_id"])
        assert service.query(waiting["job_id"])["state"] == "cancelled"
        crash(service)
        recovered = SchedulerService.open(experiment, svc_config)
        with recovered:
            assert recovered.query(waiting["job_id"])["state"] == "cancelled"
            assert recovered.query(running["job_id"])["state"] == "running"

    def test_metrics_report_recovery(self, tmp_path):
        experiment = small_config()
        svc_config = durable_config(tmp_path)
        service = SchedulerService.open(experiment, svc_config).start()
        service.submit([dict(SPEC)])
        crash(service)
        recovered = SchedulerService.open(experiment, svc_config)
        with recovered:
            durability = recovered.metrics()["durability"]
        assert durability["durable"]
        assert durability["recovery"]["resumed"]


class TestIdempotency:
    def test_duplicate_keyed_submit_applied_once(self, tmp_path):
        experiment = small_config()
        service = SchedulerService.open(experiment, durable_config(tmp_path))
        with service:
            first = service.submit([dict(SPEC)], idempotency_key="alpha")
            second = service.submit([dict(SPEC)], idempotency_key="alpha")
            assert [r["job_id"] for r in first] == [r["job_id"] for r in second]
            assert len(service.jobs()["jobs"]) == 1
            assert service.metrics()["counters"]["dedup_hits"] == 1

    def test_dedup_replay_returns_current_record(self, tmp_path):
        """The dedup hit re-renders the job's *current* state — the
        retried client sees completion, not a stale snapshot of the
        original reply."""
        experiment = small_config()
        service = SchedulerService.open(experiment, durable_config(tmp_path))
        with service:
            (first,) = service.submit([dict(SPEC)], idempotency_key="beta")
            assert first["state"] == "running"
            service.advance(10_000.0)
            (second,) = service.submit([dict(SPEC)], idempotency_key="beta")
            assert second["job_id"] == first["job_id"]
            assert second["state"] == "completed"

    def test_duplicate_keyed_cancel_applied_once(self, tmp_path):
        experiment = small_config()
        service = SchedulerService.open(experiment, durable_config(tmp_path))
        with service:
            (record,) = service.submit([dict(SPEC)])
            first = service.cancel(record["job_id"], idempotency_key="c1")
            second = service.cancel(record["job_id"], idempotency_key="c1")
            assert first["outcome"] == "killed"
            # Unkeyed re-cancel would say "already_terminal"; the keyed
            # retry reports the original outcome.
            assert second["outcome"] == "killed"

    def test_dedup_survives_crash(self, tmp_path):
        """The retry window spans a restart: a client retrying into the
        recovered service must still hit the dedup entry."""
        experiment = small_config()
        svc_config = durable_config(tmp_path, checkpoint_every=0)
        service = SchedulerService.open(experiment, svc_config).start()
        first = service.submit([dict(SPEC)], idempotency_key="gamma")
        crash(service)
        recovered = SchedulerService.open(experiment, svc_config)
        with recovered:
            second = recovered.submit([dict(SPEC)], idempotency_key="gamma")
            assert len(recovered.jobs()["jobs"]) == 1
        assert [r["job_id"] for r in second] == [r["job_id"] for r in first]

    def test_invalid_key_rejected(self, tmp_path):
        service = SchedulerService.open(small_config(), durable_config(tmp_path))
        with service:
            with pytest.raises(ProtocolError) as err:
                service.submit([dict(SPEC)], idempotency_key="")
            assert err.value.code == "invalid_key"
            with pytest.raises(ProtocolError):
                service.submit([dict(SPEC)], idempotency_key="x" * 201)

    def test_dedup_window_evicts_lru(self, tmp_path):
        service = SchedulerService.open(
            small_config(), durable_config(tmp_path, dedup_window=2)
        )
        with service:
            service.submit([dict(SPEC)], idempotency_key="k1")
            service.submit([dict(SPEC)], idempotency_key="k2")
            service.submit([dict(SPEC)], idempotency_key="k3")  # evicts k1
            retried = service.submit([dict(SPEC)], idempotency_key="k1")
            # k1 fell out of the window: the retry is a fresh admission.
            assert len(service.jobs()["jobs"]) == 4
            assert retried[0]["job_id"] == 4


def gate_engine(service: SchedulerService):
    """Make the engine block mid-drain until the returned gate is set.

    While the engine is parked inside ``_process`` the inbox backs up
    behind it, which is exactly the overload the degradation paths are
    designed for — no sleeping, no timing guesswork.
    """
    busy = threading.Event()
    gate = threading.Event()
    original = service._process

    def gated(batch, wall):
        busy.set()
        gate.wait(timeout=30.0)
        original(batch, wall)

    service._process = gated  # type: ignore[method-assign]
    return busy, gate


def park_submit(service: SchedulerService, outcome: dict) -> threading.Thread:
    def run():
        try:
            outcome.setdefault("results", []).append(
                service.submit([dict(SPEC)])
            )
        except ProtocolError as exc:
            outcome["error"] = exc

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread


def wait_for_inbox(service: SchedulerService, depth: int = 1) -> None:
    for _ in range(1000):
        with service._cond:
            if len(service._inbox) >= depth:
                return
        time.sleep(0.005)
    raise AssertionError("inbox never filled")


class TestDegradation:
    def test_overload_sheds_with_429(self):
        """A full inbox sheds new work *before* enqueueing it, so a
        shed op was never applied and any client may retry it."""
        config = small_config()
        service = SchedulerService(
            config.build_cluster(),
            config.build_scheduler(),
            ServiceConfig(mode="replay", max_inbox=1),
        )
        busy, gate = gate_engine(service)
        service.start()
        outcome: dict = {}
        first = park_submit(service, outcome)  # engine takes it, parks
        busy.wait(timeout=10.0)
        second = park_submit(service, outcome)  # fills the 1-slot inbox
        wait_for_inbox(service)
        with pytest.raises(ProtocolError) as err:
            service.submit([dict(SPEC)])
        assert err.value.status == 429
        assert err.value.code == "overloaded"
        assert err.value.retry_after > 0
        assert service.counters.shed_overload == 1
        gate.set()
        first.join(timeout=10.0)
        second.join(timeout=10.0)
        service.stop()
        assert "error" not in outcome
        assert len(outcome["results"]) == 2

    def test_deadline_shed_with_504(self):
        config = small_config()
        service = SchedulerService(
            config.build_cluster(),
            config.build_scheduler(),
            ServiceConfig(mode="replay", deadline_s=5.0),
        )
        busy, gate = gate_engine(service)
        service.start()
        blocker: dict = {}
        first = park_submit(service, blocker)  # parks the engine
        busy.wait(timeout=10.0)
        outcome: dict = {}
        aged = park_submit(service, outcome)  # queues behind the park
        wait_for_inbox(service)
        with service._cond:
            # Backdate the queued op far past the 5s budget — the wait
            # it models really happened, just without the wall time.
            service._inbox[0].received -= 60.0
        gate.set()
        first.join(timeout=10.0)
        aged.join(timeout=10.0)
        service.stop()
        assert outcome["error"].status == 504
        assert outcome["error"].code == "deadline_exceeded"
        assert service.counters.shed_deadline == 1
        # The first op beat its deadline (it was drained immediately).
        assert len(blocker.get("results", [])) == 1


class TestExactlyOnceOverHTTP:
    def test_severed_reply_then_retry_applies_once(self, tmp_path):
        """The acceptance scenario: the server applies a keyed submit
        but the client never reads the reply (connection severed).  The
        client's retry with the same key must observe the original
        admission — one job, not two."""
        config = small_config()
        service = SchedulerService.open(config, durable_config(tmp_path))
        with ServiceDaemon(service) as daemon:
            host, port = daemon.address
            body = (
                b'{"jobs": [{"nodes": 1, "walltime": 600.0, '
                b'"runtime": 300.0, "mem_per_node": 4096}], '
                b'"idempotency_key": "sever-1"}'
            )
            request = (
                b"POST /v1/submit HTTP/1.1\r\n"
                b"Host: %b\r\nContent-Type: application/json\r\n"
                b"Content-Length: %d\r\n\r\n%b"
                % (host.encode(), len(body), body)
            )
            with socket.create_connection((host, port)) as raw:
                raw.sendall(request)
                # Sever before reading: the reply is lost in flight.
                raw.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER,
                    b"\x01\x00\x00\x00\x00\x00\x00\x00",
                )
            # Wait until the server has actually applied the orphaned
            # request (the handler keeps going; _reply eats the EPIPE).
            with ServiceClient(daemon.url) as client:
                for _ in range(200):
                    if client.jobs()["jobs"]:
                        break
                    time.sleep(0.01)
                applied = client.jobs()["jobs"]
                assert len(applied) == 1, "orphaned submit was not applied"
                retried = client.submit(
                    [dict(SPEC)], idempotency_key="sever-1"
                )
                assert retried[0]["job_id"] == applied[0]["job_id"]
                assert len(client.jobs()["jobs"]) == 1

    def test_client_retries_429_until_accepted(self):
        """End-to-end backpressure: a shedding server answers 429 with
        a retry_after hint, and the client's automatic backoff retry
        lands once the engine catches up."""
        config = small_config()
        service = SchedulerService(
            config.build_cluster(),
            config.build_scheduler(),
            ServiceConfig(mode="replay", max_inbox=1),
        )
        busy, gate = gate_engine(service)
        with ServiceDaemon(service) as daemon:
            outcome: dict = {}
            first = park_submit(service, outcome)  # engine takes, parks
            busy.wait(timeout=10.0)
            second = park_submit(service, outcome)  # fills the inbox
            wait_for_inbox(service)
            with ServiceClient(daemon.url, retries=0) as impatient:
                with pytest.raises(ServiceError) as err:
                    impatient.submit([dict(SPEC)])
                assert err.value.status == 429
                assert err.value.code == "overloaded"
                assert err.value.retry_after > 0
            # Release the engine shortly; the patient client's first
            # attempt sheds, its backoff retry then succeeds.
            threading.Timer(0.05, gate.set).start()
            with ServiceClient(daemon.url, retries=8, backoff_s=0.01) as patient:
                records = patient.submit([dict(SPEC)])
                assert records[0]["state"] in ("running", "pending")
            first.join(timeout=10.0)
            second.join(timeout=10.0)
            assert service.counters.shed_overload >= 2


class _ScriptedServer:
    """A socket stand-in for the daemon that plays a fixed script —
    one action per accepted request: ``"sever"`` closes the connection
    without replying (the lost-reply shape), ``(status, payload)``
    answers that JSON response.  Every reply closes the connection, so
    each script step is one client attempt."""

    def __init__(self, script):
        self.script = list(script)
        self.requests = []
        self._sock = socket.create_server(("127.0.0.1", 0))
        self._sock.settimeout(5.0)
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc):
        self._sock.close()
        self._thread.join(timeout=5.0)

    @property
    def url(self):
        return f"http://127.0.0.1:{self.port}"

    def _serve(self):
        while self.script:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            with conn:
                conn.settimeout(5.0)
                data = b""
                while b"\r\n\r\n" not in data:
                    chunk = conn.recv(65536)
                    if not chunk:
                        break
                    data += chunk
                if b"\r\n\r\n" not in data:
                    continue
                head, _, body = data.partition(b"\r\n\r\n")
                length = 0
                for line in head.split(b"\r\n")[1:]:
                    name, _, value = line.partition(b":")
                    if name.strip().lower() == b"content-length":
                        length = int(value)
                while len(body) < length:
                    body += conn.recv(65536)
                self.requests.append(head.split(b"\r\n")[0].decode())
                action = self.script.pop(0)
                if action == "sever":
                    continue  # close with the reply still owed
                status, payload = action
                reply = json.dumps(payload).encode()
                conn.sendall(
                    b"HTTP/1.1 %d X\r\nContent-Type: application/json\r\n"
                    b"Content-Length: %d\r\nConnection: close\r\n\r\n%b"
                    % (status, len(reply), reply)
                )


def _shed(code):
    return (504, {"error": {"code": code, "message": "shed"}})


class TestSevered504Retry:
    def test_severed_then_deadline_shed_then_applied(self):
        """The compound failure: the first attempt's connection is
        severed before the reply (network-error retry path), the
        reconnected retry is deadline-shed with 504 — guaranteed
        unapplied, so it must retry too — and the third attempt
        lands."""
        record = {"jobs": [{"job_id": 1, "state": "pending"}]}
        script = ["sever", _shed("deadline_exceeded"), (200, record)]
        with _ScriptedServer(script) as server:
            with ServiceClient(
                server.url, retries=2, backoff_s=0.001
            ) as client:
                jobs = client.submit([dict(SPEC)])
        assert jobs == record["jobs"]
        assert len(server.requests) == 3

    def test_unkeyed_deadline_shed_retries(self):
        """``advise`` carries no idempotency key, but a deadline shed
        happens before any engine work — retry regardless."""
        script = [_shed("deadline_exceeded"), (200, {"ok": True})]
        with _ScriptedServer(script) as server:
            with ServiceClient(
                server.url, retries=1, backoff_s=0.001
            ) as client:
                assert client.advise(dict(SPEC)) == {"ok": True}
        assert len(server.requests) == 2

    def test_ambiguous_504_timeout_not_blindly_retried(self):
        """A 504 ``timeout`` reports an op that may still be applied
        after the reply window: without a safe-to-repeat guarantee the
        client must surface it, not resend."""
        with _ScriptedServer([_shed("timeout")]) as server:
            with ServiceClient(
                server.url, retries=3, backoff_s=0.001
            ) as client:
                with pytest.raises(ServiceError) as err:
                    client._request(
                        "POST", "/v1/submit", {"jobs": []}, idempotent=False
                    )
        assert err.value.status == 504
        assert err.value.code == "timeout"
        assert len(server.requests) == 1

    def test_keyed_504_timeout_retries_safely(self):
        """A keyed submit is deduplicated server-side, so even the
        ambiguous timeout may be repeated."""
        record = {"jobs": [{"job_id": 7, "state": "pending"}]}
        script = [_shed("timeout"), (200, record)]
        with _ScriptedServer(script) as server:
            with ServiceClient(
                server.url, retries=1, backoff_s=0.001
            ) as client:
                assert client.submit([dict(SPEC)]) == record["jobs"]
        assert len(server.requests) == 2

"""Targeted suite for the pool-level plan-cache bound.

The per-node replay bound (``tests/test_plan_cache_skew.py``) is
sentinel-poisoned the moment a scan rejects any breakpoint on *pool
capacity*: placement identity can flip under arbitrary free-set
changes, so counting freed nodes alone cannot prove those rejections
stable.  The pool-level bound recovers exactly that regime on
global-pool machines, where the allocator's verdict is a pure function
of the global pool level and the node count: a pool-capacity rejection
below a cached start can only flip if pool availability *rose* below
the fold horizon, and node-only completions release zero pool MiB.

The workload that exercises it mixes:

* long remote-heavy jobs that hold most of the (metered) global pool
  and queue behind each other — their reservation scans reject early
  breakpoints on pool capacity, so their entries carry the count-only
  ``p_bound`` instead of a usable per-node bound;
* node-only filler jobs whose realized runtime is a few percent of the
  requested walltime — every completion fold blows the probe's time
  cap far past the cached starts while releasing *no* pool capacity,
  which is precisely the door the pool-level bound opens.

The pool is metered (finite bandwidth) on purpose: duration estimates
of remote jobs are pressure-dependent, and node-only folds leave pool
usage — hence pressure, hence the estimates — bit-identical, so the
cached durations revalidate and the door is reachable.

Both halves of the contract are pinned:

* decisions match the golden digests in ``tests/golden/pool_skew.json``
  (baselined from runs verified against the pre-index reference pass)
  — the bound is pure acceleration;
* the pool-level resume path actually fires (``replay_stats["pool"]``),
  so the ROADMAP item stays covered by an assertion, not a benchmark.
"""

from __future__ import annotations

import random
import zlib

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec, PoolSpec
from repro.engine.simulation import SchedulerSimulation
from repro.sched.base import build_scheduler
from repro.units import GiB, HOUR
from repro.workload import Job

from ._golden import assert_matches_golden

GOLDEN = "pool_skew"


def _spec() -> ClusterSpec:
    # 16 thin nodes, one metered global pool barely big enough for two
    # remote-heavy jobs at once: queued remote jobs see breakpoints
    # where nodes are free but the pool is not.
    return ClusterSpec(
        name="pool-skew", num_nodes=16, nodes_per_rack=8,
        node=NodeSpec(cores=8, local_mem=16 * GiB),
        pool=PoolSpec(global_pool=96 * GiB, global_bandwidth=64 * 1024.0),
    )


def _pool_skew_jobs(rng: random.Random, num_jobs: int = 48,
                    skew: float = 0.04, remote_fraction: float = 0.4):
    """Remote-heavy long jobs contending for the pool, interleaved
    with walltime-padded node-only fillers whose early completions
    fold without returning any pool capacity."""
    jobs = []
    t = 0.0
    for job_id in range(1, num_jobs + 1):
        t += rng.expovariate(1.0 / 200.0)
        if rng.random() < remote_fraction:
            # Remote-heavy: 8-16 GiB/node above the 16 GiB local DRAM.
            walltime = rng.uniform(4 * HOUR, 10 * HOUR)
            jobs.append(Job(
                job_id=job_id,
                submit_time=round(t, 3),
                nodes=rng.randint(4, 8),
                walltime=walltime,
                runtime=walltime * rng.uniform(0.7, 0.95),
                mem_per_node=rng.choice((24, 28, 32)) * GiB,
                user=f"user{rng.randint(0, 3)}",
            ))
        else:
            # Node-only filler, heavily walltime-padded: folds blow
            # the time cap while releasing zero pool MiB.
            walltime = rng.uniform(2 * HOUR, 8 * HOUR)
            jobs.append(Job(
                job_id=job_id,
                submit_time=round(t, 3),
                nodes=rng.randint(1, 4),
                walltime=walltime,
                runtime=max(60.0, walltime * rng.uniform(skew * 0.5,
                                                         skew * 1.5)),
                mem_per_node=rng.choice((4, 8, 12)) * GiB,
                user=f"user{rng.randint(0, 3)}",
            ))
    return jobs


def _rng(token: str) -> random.Random:
    return random.Random(zlib.crc32(token.encode()))


def _run_pool_skew(token: str, **kwargs):
    """Run the optimized stack, pin its digest, return replay stats."""
    rng = _rng(token)
    jobs = _pool_skew_jobs(rng, **kwargs)
    penalty = {"kind": "contention", "beta": 0.3, "kappa": 2.0}
    sched = build_scheduler(backfill="conservative", penalty=penalty)
    result = SchedulerSimulation(
        Cluster(_spec()), sched, [j.copy_request() for j in jobs]
    ).run()
    assert_matches_golden(GOLDEN, token, result)
    return sched.backfill.replay_stats


def golden_cases():
    """Every case in this suite, for tools/gen_golden.py."""

    def case(token, spec_fn, penalty, **jobs_kwargs):
        jobs = _pool_skew_jobs(_rng(token), **jobs_kwargs)

        def run():
            sched = build_scheduler(backfill="conservative", penalty=penalty)
            return SchedulerSimulation(
                Cluster(spec_fn()), sched, [j.copy_request() for j in jobs]
            ).run()

        return token, run

    contention = {"kind": "contention", "beta": 0.3, "kappa": 2.0}
    for seed in range(10):
        yield case(f"pool-skew-{seed}", _spec, contention)
    for seed in range(4):
        yield case(f"pool-skew-dense-{seed}", _spec, contention,
                   remote_fraction=0.6)
    for seed in range(6):
        yield case(f"pool-skew-fire-{seed}", _spec, contention)
    yield case("pool-skew-rack", _rack_spec, {"kind": "linear", "beta": 0.3})


def _rack_spec() -> ClusterSpec:
    return ClusterSpec(
        name="pool-skew-rack", num_nodes=16, nodes_per_rack=8,
        node=NodeSpec(cores=8, local_mem=16 * GiB),
        pool=PoolSpec(rack_pool=48 * GiB),
    )


class TestPoolSkew:
    @pytest.mark.parametrize("seed", range(10))
    def test_pool_skewed_workloads_match_golden(self, seed):
        """Metered pool contention + node-only early finishers: the
        pool-level bound must be decision-invisible while the fold
        horizon sits far past every cached start."""
        _run_pool_skew(f"pool-skew-{seed}")

    @pytest.mark.parametrize("seed", range(4))
    def test_dense_remote_matches_golden(self, seed):
        """Heavier remote share: more pool-capacity rejections, more
        entries carrying only the count-only bound."""
        _run_pool_skew(f"pool-skew-dense-{seed}", remote_fraction=0.6)

    def test_pool_resume_fires_in_skew_regime(self):
        """The regression target itself: under node-only early-finish
        skew, entries whose scans rejected on pool capacity must
        resume through the pool-level bound instead of re-walking
        their prefix."""
        fired = 0
        for seed in range(6):
            stats = _run_pool_skew(f"pool-skew-fire-{seed}")
            fired += stats["pool"]
        assert fired > 0, (
            "pool-level replay bound never fired on pool-skewed "
            "workloads — the ROADMAP regression this suite guards has "
            "returned"
        )

    def test_pool_door_shut_on_rack_pools(self):
        """On a rack-pool machine the allocator's verdict depends on
        placement identity, so the pool door must stay shut (and the
        schedule must of course still match its golden)."""
        token = "pool-skew-rack"
        jobs = _pool_skew_jobs(_rng(token))
        sched = build_scheduler(
            backfill="conservative", penalty={"kind": "linear", "beta": 0.3}
        )
        result = SchedulerSimulation(
            Cluster(_rack_spec()), sched, [j.copy_request() for j in jobs]
        ).run()
        assert_matches_golden(GOLDEN, token, result)
        assert sched.backfill.replay_stats["pool"] == 0

"""Engine checkpoint/restore round-trip tests.

The contract under test: ``restore(checkpoint(s))`` behaves exactly
like ``s`` — not just field equality at the checkpoint instant, but
*decision identity for the rest of the run*.  Every round-trip test
therefore checkpoints mid-run, continues the original AND the restored
engine to completion, and compares the full record (job execution
fields, promises, cycle counts, ledger) field for field.  Scheduler
caches are deliberately not serialized, so these tests also prove the
cold-cache restore is decision-transparent across backfill variants,
fair-share accounting, and node failures.
"""

from __future__ import annotations

import json

import pytest

from repro.config import ExperimentConfig
from repro.engine.failures import exponential_failure_trace
from repro.engine.simulation import SchedulerSimulation
from repro.errors import SimulationError
from repro.service.core import default_service_config
from repro.service.protocol import job_to_record
from repro.sim.rng import RandomStreams
from repro.workload.job import JobState

from .conftest import make_job


def small_config(num_jobs: int = 60, **scheduler) -> ExperimentConfig:
    config = default_service_config()
    config.workload = dict(config.workload, num_jobs=num_jobs)
    if scheduler:
        config.scheduler = dict(config.scheduler, **scheduler)
    return config


def build_online(config: ExperimentConfig, jobs, **kwargs) -> SchedulerSimulation:
    return SchedulerSimulation(
        config.build_cluster(),
        config.build_scheduler(),
        [job.copy_request() for job in jobs],
        online=True,
        **kwargs,
    )


def record_of(engine: SchedulerSimulation) -> dict:
    result = engine.online_result()
    return {
        job.job_id: job_to_record(job, result.promises.get(job.job_id))
        for job in result.jobs
    }


def roundtrip(engine: SchedulerSimulation) -> SchedulerSimulation:
    """Checkpoint through JSON (as the journal layer does) and restore
    onto a fresh cluster/scheduler built from the same config."""
    snapshot = json.loads(json.dumps(engine.checkpoint()))
    config = engine._restore_config  # attached by tests below
    return SchedulerSimulation.restore(
        config.build_cluster(), config.build_scheduler(), snapshot
    )


def run_split(config: ExperimentConfig, jobs, cut: float, **kwargs):
    """Run one engine straight through and a second with a
    checkpoint/restore at ``cut``; return both final records."""
    straight = build_online(config, jobs, **kwargs)
    straight.drain()

    original = build_online(config, jobs, **kwargs)
    original.advance_to(cut)
    original._restore_config = config
    restored = roundtrip(original)
    restored.drain()
    original.drain()
    return record_of(straight), record_of(original), record_of(restored)


SCHEDULER_VARIANTS = [
    {},  # fcfs + easy (service default)
    {"backfill": "conservative"},
    {"queue": "fairshare", "backfill": "easy"},
    {"queue": "sjf", "backfill": "conservative", "placement": "rack_pack"},
]


class TestRoundTrip:
    @pytest.mark.parametrize("scheduler", SCHEDULER_VARIANTS)
    @pytest.mark.parametrize("cut_frac", [0.25, 0.6])
    def test_mid_run_roundtrip_is_decision_identical(self, scheduler, cut_frac):
        config = small_config(num_jobs=80, **scheduler)
        jobs = config.build_jobs()
        horizon = max(job.submit_time for job in jobs)
        cut = jobs[0].submit_time + cut_frac * (horizon - jobs[0].submit_time)
        straight, original, restored = run_split(config, jobs, cut)
        assert restored == original
        assert restored == straight

    def test_roundtrip_with_failures(self):
        config = small_config(num_jobs=60)
        jobs = config.build_jobs()
        streams = RandomStreams(7)
        horizon = max(job.submit_time for job in jobs)
        failures = exponential_failure_trace(
            num_nodes=config.cluster.num_nodes,
            horizon=horizon * 2,
            mtbf=horizon,
            mean_repair=horizon / 10,
            streams=streams,
        )
        cut = jobs[0].submit_time + 0.4 * (horizon - jobs[0].submit_time)
        straight, original, restored = run_split(
            config, jobs, cut, failures=failures
        )
        assert restored == original
        assert restored == straight

    def test_roundtrip_preserves_cycles_and_clock(self):
        config = small_config(num_jobs=40)
        jobs = config.build_jobs()
        engine = build_online(config, jobs)
        cut = jobs[len(jobs) // 2].submit_time
        engine.advance_to(cut)
        engine._restore_config = config
        restored = roundtrip(engine)
        assert restored.now == engine.now
        assert restored.cycles == engine.cycles
        assert restored.queue_depth == engine.queue_depth
        assert restored.running_count == engine.running_count
        assert restored._terminal_count == engine._terminal_count
        assert restored._max_job_id == engine._max_job_id
        assert len(restored._ledger) == len(engine._ledger)
        assert restored._sim.events_processed == engine._sim.events_processed

    def test_snapshot_is_json_stable(self):
        """checkpoint → restore → checkpoint reproduces the document."""
        config = small_config(num_jobs=40)
        jobs = config.build_jobs()
        engine = build_online(config, jobs)
        engine.advance_to(jobs[len(jobs) // 2].submit_time)
        snap1 = json.loads(json.dumps(engine.checkpoint()))
        restored = SchedulerSimulation.restore(
            config.build_cluster(), config.build_scheduler(), snap1
        )
        snap2 = json.loads(json.dumps(restored.checkpoint()))
        assert snap1 == snap2

    def test_restore_then_inject_continues_id_space(self):
        config = small_config(num_jobs=20)
        jobs = config.build_jobs()
        engine = build_online(config, jobs)
        engine.advance_to(jobs[-1].submit_time)
        engine._restore_config = config
        restored = roundtrip(engine)
        new_job = make_job(
            job_id=restored._max_job_id + 1, submit=restored.now + 10.0
        )
        restored.inject_jobs([new_job])
        restored.drain()
        assert restored.job(new_job.job_id).state is JobState.COMPLETED

    def test_checkpoint_requires_online(self):
        config = small_config(num_jobs=5)
        sim = SchedulerSimulation(
            config.build_cluster(), config.build_scheduler(), config.build_jobs()
        )
        with pytest.raises(SimulationError):
            sim.checkpoint()

    def test_restore_rejects_unknown_schema(self):
        config = small_config(num_jobs=5)
        with pytest.raises(SimulationError):
            SchedulerSimulation.restore(
                config.build_cluster(), config.build_scheduler(), {"schema": 99}
            )


class TestRngContinuation:
    def test_stream_state_roundtrip_continues_mid_sequence(self):
        streams = RandomStreams(123)
        gen = streams.get("chaos")
        gen.random(17)  # advance mid-sequence
        state = json.loads(json.dumps(streams.state_dict()))
        twin = RandomStreams.from_state_dict(state)
        assert twin.get("chaos").random(8).tolist() == gen.random(8).tolist()

    def test_unmentioned_streams_still_derive_from_seed(self):
        streams = RandomStreams(5)
        streams.get("a").random(3)
        twin = RandomStreams.from_state_dict(streams.state_dict())
        # A stream never drawn before the snapshot starts fresh from
        # the same (seed, name) derivation on both sides.
        assert (
            twin.get("b").random(4).tolist()
            == RandomStreams(5).get("b").random(4).tolist()
        )


class TestOnlineEdgeCases:
    """Satellite: online-mode ordering edge cases around drains."""

    def test_cancel_in_same_drain_as_start(self):
        """A cancel that lands at the same instant the job would start
        kills it if it already started, or withdraws it if still
        queued — either way the engine stays consistent."""
        config = small_config(num_jobs=0)
        engine = SchedulerSimulation(
            config.build_cluster(),
            config.build_scheduler(),
            [],
            online=True,
        )
        a = make_job(job_id=1, submit=0.0, nodes=1, runtime=100.0)
        b = make_job(job_id=2, submit=0.0, nodes=1, runtime=100.0)
        engine.inject_jobs([a, b])
        engine.advance_to(0.0)  # both start at t=0
        assert engine.running_count == 2
        outcome = engine.cancel_job(1)
        assert outcome == "killed"
        assert engine.job(1).state is JobState.KILLED
        assert engine.job(1).kill_reason == "cancelled"
        engine.drain()
        assert engine.job(2).state is JobState.COMPLETED

    def test_cancel_before_submit_instant_withdraws_cleanly(self):
        config = small_config(num_jobs=0)
        engine = SchedulerSimulation(
            config.build_cluster(),
            config.build_scheduler(),
            [],
            online=True,
        )
        job = make_job(job_id=1, submit=50.0)
        engine.inject_jobs([job])
        # Cancel while the submit event is still in the future.
        assert engine.cancel_job(1) == "cancelled"
        engine.drain()
        assert engine.job(1).state is JobState.CANCELLED
        assert engine.queue_depth == 0

    def test_advance_past_pending_submissions_is_ordered(self):
        """Advancing far past several submit instants fires them in
        (time, id) order exactly as an offline run would."""
        config = small_config(num_jobs=30)
        jobs = config.build_jobs()
        offline = SchedulerSimulation(
            config.build_cluster(),
            config.build_scheduler(),
            [job.copy_request() for job in jobs],
        )
        offline_result = offline.run()
        online = build_online(config, jobs)
        online.drain()
        online_records = record_of(online)
        expected = {
            job.job_id: job_to_record(
                job, offline_result.promises.get(job.job_id)
            )
            for job in offline_result.jobs
        }
        assert online_records == expected

    def test_roundtrip_mid_instant_queue_order(self):
        """Checkpoint taken when several jobs share the queue at one
        instant preserves queue order across restore."""
        config = small_config(num_jobs=0, backfill="conservative")
        engine = SchedulerSimulation(
            config.build_cluster(),
            config.build_scheduler(),
            [],
            online=True,
        )
        cluster_nodes = config.cluster.num_nodes
        blocker = make_job(
            job_id=1, submit=0.0, nodes=cluster_nodes, runtime=500.0
        )
        waiters = [
            make_job(job_id=i, submit=10.0, nodes=1, runtime=50.0)
            for i in range(2, 8)
        ]
        engine.inject_jobs([blocker] + waiters)
        engine.advance_to(10.0)
        assert engine.queue_depth == len(waiters)
        engine._restore_config = config
        restored = roundtrip(engine)
        assert [j.job_id for j in restored._queue] == [
            j.job_id for j in engine._queue
        ]
        restored.drain()
        engine.drain()
        assert record_of(restored) == record_of(engine)

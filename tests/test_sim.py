"""Tests for the discrete-event kernel: events, queue, engine, rng."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim import Event, EventPriority, EventQueue, RandomStreams, Simulator


def noop(event):
    pass


class TestEventOrdering:
    def test_time_dominates(self):
        early = Event(1.0, 5, 10, noop)
        late = Event(2.0, 0, 0, noop)
        assert early < late

    def test_priority_breaks_time_ties(self):
        finish = Event(1.0, EventPriority.FINISH, 10, noop)
        submit = Event(1.0, EventPriority.SUBMIT, 0, noop)
        assert finish < submit

    def test_seq_breaks_remaining_ties(self):
        first = Event(1.0, 0, 0, noop)
        second = Event(1.0, 0, 1, noop)
        assert first < second

    def test_priority_enum_order(self):
        # The engine depends on this canonical order.
        assert EventPriority.FINISH < EventPriority.KILL
        assert EventPriority.KILL < EventPriority.SUBMIT
        assert EventPriority.SUBMIT < EventPriority.SCHEDULE
        assert EventPriority.SCHEDULE < EventPriority.SAMPLE


class TestEventQueue:
    def test_pop_ordering(self):
        q = EventQueue()
        events = [
            Event(3.0, 0, 0, noop),
            Event(1.0, 1, 1, noop),
            Event(1.0, 0, 2, noop),
            Event(2.0, 0, 3, noop),
        ]
        for e in events:
            q.push(e)
        popped = [q.pop() for _ in range(4)]
        assert [e.time for e in popped] == [1.0, 1.0, 2.0, 3.0]
        assert popped[0].priority == 0  # priority tie-break at t=1

    def test_len_counts_live_only(self):
        q = EventQueue()
        a = Event(1.0, 0, 0, noop)
        b = Event(2.0, 0, 1, noop)
        q.push(a)
        q.push(b)
        assert len(q) == 2
        q.cancel(a)
        assert len(q) == 1

    def test_cancelled_events_skipped(self):
        q = EventQueue()
        a = Event(1.0, 0, 0, noop)
        b = Event(2.0, 0, 1, noop)
        q.push(a)
        q.push(b)
        q.cancel(a)
        assert q.pop() is b

    def test_cancel_idempotent(self):
        q = EventQueue()
        a = Event(1.0, 0, 0, noop)
        q.push(a)
        q.cancel(a)
        q.cancel(a)
        assert len(q) == 0

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek_does_not_remove(self):
        q = EventQueue()
        a = Event(1.0, 0, 0, noop)
        q.push(a)
        assert q.peek() is a
        assert len(q) == 1

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        a = Event(1.0, 0, 0, noop)
        b = Event(2.0, 0, 1, noop)
        q.push(a)
        q.push(b)
        q.cancel(a)
        assert q.peek() is b

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e6, allow_nan=False),
                st.integers(min_value=0, max_value=5),
            ),
            max_size=200,
        )
    )
    def test_property_pops_sorted(self, items):
        q = EventQueue()
        for seq, (time, prio) in enumerate(items):
            q.push(Event(time, prio, seq, noop))
        keys = [e.sort_key() for e in q.drain()]
        assert keys == sorted(keys)


class TestSimulator:
    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        times = []
        sim.schedule_at(5.0, lambda e: times.append(sim.now))
        sim.schedule_at(2.0, lambda e: times.append(sim.now))
        sim.run()
        assert times == [2.0, 5.0]
        assert sim.now == 5.0

    def test_schedule_after(self):
        sim = Simulator(start_time=100.0)
        fired = []
        sim.schedule_after(10.0, lambda e: fired.append(sim.now))
        sim.run()
        assert fired == [110.0]

    def test_schedule_in_past_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, noop)

    def test_schedule_at_now_allowed(self):
        sim = Simulator()
        order = []
        def outer(e):
            order.append("outer")
            sim.schedule_at(sim.now, lambda e2: order.append("inner"))
        sim.schedule_at(1.0, outer)
        sim.run()
        assert order == ["outer", "inner"]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_after(-1.0, noop)

    def test_nan_time_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_at(float("nan"), noop)

    def test_run_until_leaves_future_events(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda e: fired.append(1))
        sim.schedule_at(10.0, lambda e: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        assert sim.pending_events == 1
        sim.run()
        assert fired == [1, 10]

    def test_cancel_prevents_firing(self):
        sim = Simulator()
        fired = []
        event = sim.schedule_at(1.0, lambda e: fired.append(1))
        sim.cancel(event)
        sim.run()
        assert fired == []

    def test_events_spawned_during_run(self):
        sim = Simulator()
        fired = []
        def chain(e):
            fired.append(sim.now)
            if sim.now < 3:
                sim.schedule_after(1.0, chain)
        sim.schedule_at(1.0, chain)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_max_events_guard(self):
        sim = Simulator()
        def forever(e):
            sim.schedule_after(1.0, forever)
        sim.schedule_at(0.0, forever)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=50)

    def test_priority_order_within_instant(self):
        sim = Simulator()
        order = []
        sim.schedule_at(1.0, lambda e: order.append("submit"),
                        priority=EventPriority.SUBMIT)
        sim.schedule_at(1.0, lambda e: order.append("finish"),
                        priority=EventPriority.FINISH)
        sim.schedule_at(1.0, lambda e: order.append("schedule"),
                        priority=EventPriority.SCHEDULE)
        sim.run()
        assert order == ["finish", "submit", "schedule"]

    def test_events_processed_counter(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.schedule_at(t, noop)
        sim.run()
        assert sim.events_processed == 3

    def test_payload_passed(self):
        sim = Simulator()
        got = []
        sim.schedule_at(1.0, lambda e: got.append(e.payload), payload={"x": 1})
        sim.run()
        assert got == [{"x": 1}]


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(42).get("arrival")
        b = RandomStreams(42).get("arrival")
        assert a.uniform() == b.uniform()

    def test_streams_independent_of_request_order(self):
        s1 = RandomStreams(42)
        s2 = RandomStreams(42)
        _ = s1.get("other")  # request an extra stream first
        assert s1.get("arrival").uniform() == s2.get("arrival").uniform()

    def test_different_names_differ(self):
        s = RandomStreams(42)
        assert s.get("a").uniform() != s.get("b").uniform()

    def test_different_seeds_differ(self):
        a = RandomStreams(1).get("arrival")
        b = RandomStreams(2).get("arrival")
        assert a.uniform() != b.uniform()

    def test_get_returns_same_object(self):
        s = RandomStreams(0)
        assert s.get("x") is s.get("x")

    def test_spawn_reproducible_and_distinct(self):
        root = RandomStreams(7)
        child_a = root.spawn(0)
        child_b = root.spawn(1)
        child_a2 = RandomStreams(7).spawn(0)
        assert child_a.seed == child_a2.seed
        assert child_a.seed != child_b.seed
        assert child_a.seed != root.seed

"""Mutation-kills for the deep validator.

Each case corrupts one aspect of a known-good :class:`SimulationResult`
(on a deep copy — the bases are module-cached) and asserts that
:func:`repro.audit.deep_audit` reports the corruption under the *right*
invariant class.  A corruption may legitimately trip secondary
invariants too (inflating a pool grant also breaks the split identity);
the contract is that the expected class is among the error-severity
findings, and that the pristine base stays clean.
"""

from __future__ import annotations

import copy
import dataclasses
import functools

import pytest

from repro.audit import deep_audit
from repro.cluster import Cluster, ClusterSpec, NodeSpec, PoolSpec
from repro.engine import SchedulerSimulation
from repro.engine.failures import FailureEvent
from repro.engine.results import Promise
from repro.memdis.ledger import MemoryLedger
from repro.sched.base import build_scheduler
from repro.units import GiB
from repro.workload.job import JobState

from .conftest import make_job


def _pooled_spec() -> ClusterSpec:
    return ClusterSpec(
        name="pooled",
        num_nodes=8,
        nodes_per_rack=4,
        node=NodeSpec(cores=8, local_mem=16 * GiB),
        pool=PoolSpec(rack_pool=64 * GiB, global_pool=128 * GiB),
    )


def _workload():
    """Remote-heavy mix engineered to exercise pools, blocking, and
    backfill promises on the 8-node pooled spec."""
    jobs = []
    for i in range(10):
        jobs.append(make_job(
            job_id=i, submit=i * 120.0, nodes=2 + (i % 3) * 2,
            walltime=4000.0, runtime=2500.0 + 300.0 * (i % 4),
            mem=(24 + 8 * (i % 3)) * GiB,  # 8-24 GiB/node remote demand
            user=f"user{i % 3}",
        ))
    # A full-machine job that must wait for everything, forcing a
    # reservation (and backfill promises for whatever jumps it).
    jobs.append(make_job(job_id=10, submit=300.0, nodes=8, walltime=3000.0,
                         runtime=2000.0, mem=8 * GiB, user="user0"))
    for i in range(11, 18):
        jobs.append(make_job(
            job_id=i, submit=350.0 + (i - 11) * 60.0, nodes=1,
            walltime=1200.0, runtime=700.0, mem=12 * GiB,
            user=f"user{i % 3}",
        ))
    return jobs


@functools.lru_cache(maxsize=None)
def _base(backfill: str = "easy", queue: str = "fcfs"):
    result = SchedulerSimulation(
        Cluster(_pooled_spec()),
        build_scheduler(queue=queue, backfill=backfill),
        _workload(),
    ).run()
    report = deep_audit(result)
    assert report.ok, [str(v) for v in report.errors]
    return result


def _fresh(backfill: str = "easy", queue: str = "fcfs"):
    return copy.deepcopy(_base(backfill, queue))


def _completed(result, min_nodes: int = 1):
    for job in result.jobs:
        if job.state is JobState.COMPLETED and job.nodes >= min_nodes:
            return job
    raise AssertionError("no completed job in base result")


def _overlapping_pair(result):
    """Two completed jobs whose run windows overlap in time."""
    done = [j for j in result.jobs if j.state is JobState.COMPLETED]
    for a in done:
        for b in done:
            if a.job_id >= b.job_id:
                continue
            if a.start_time < b.end_time and b.start_time < a.end_time:
                if set(a.assigned_nodes) != set(b.assigned_nodes):
                    return a, b
    raise AssertionError("no time-overlapping completed pair in base")


def _pooled_job(result, pool_id: str = "global"):
    for job in result.finished:
        if job.pool_grants.get(pool_id, 0) > 0:
            return job
    raise AssertionError(f"no job drawing from {pool_id} in base")


def _single_rack_pooled_job(result):
    """A job with a rack-pool grant whose nodes all sit in one rack."""
    per_rack = result.cluster_spec.nodes_per_rack
    for job in result.finished:
        racks = {node // per_rack for node in job.assigned_nodes}
        if len(racks) == 1 and any(
            pid.startswith("rack") and amount > 0
            for pid, amount in job.pool_grants.items()
        ):
            return job, racks.pop()
    raise AssertionError("no single-rack job with a rack grant in base")


# ----------------------------------------------------------------------
# mutators: (name, corrupt(result) -> None, expected invariant class)
# ----------------------------------------------------------------------
def _mut_node_overlap(result):
    a, b = _overlapping_pair(result)
    stolen = a.assigned_nodes[0]
    if stolen in b.assigned_nodes:
        stolen = next(n for n in a.assigned_nodes if n not in b.assigned_nodes)
    b.assigned_nodes[0] = stolen


def _mut_node_unknown(result):
    _completed(result).assigned_nodes[0] = 999


def _mut_node_downtime(result):
    job = _completed(result)
    midpoint = (job.start_time + job.end_time) / 2
    result.failures.append(
        FailureEvent(time=midpoint, node_id=job.assigned_nodes[0],
                     repair_time=1_000.0)
    )


def _mut_pool_overflow(result):
    job = _pooled_job(result)
    capacity = result.cluster_spec.pool.global_pool
    job.pool_grants["global"] += capacity


def _mut_pool_unknown(result):
    _pooled_job(result).pool_grants["pool-x"] = 1024


def _mut_promise_broken(result):
    assert result.promises, "base run produced no backfill promises"
    job_id, promise = next(
        (jid, p) for jid, p in sorted(result.promises.items())
        if result.job(jid).start_time is not None
    )
    job = result.job(job_id)
    shift = (promise.promised_start + 500.0) - job.start_time
    job.start_time += shift
    job.end_time += shift


def _mut_promise_unknown_job(result):
    assert result.promises
    promise = next(iter(result.promises.values()))
    result.promises[9999] = dataclasses.replace(promise, job_id=9999)


def _mut_resurrect(result):
    _completed(result).state = JobState.CANCELLED


def _mut_non_terminal(result):
    _completed(result).state = JobState.RUNNING


def _mut_start_before_submit(result):
    job = _completed(result)
    job.start_time = job.submit_time - 100.0


def _mut_end_before_start(result):
    job = _completed(result)
    job.end_time = job.start_time - 50.0


def _mut_duration_skew(result):
    # Move both ends of the window so the node sweep stays coherent
    # but the realized duration no longer matches the dilated runtime.
    job = _completed(result)
    job.end_time += 10.0


def _mut_split_local(result):
    _completed(result).local_grant_per_node += 1


def _mut_split_sum(result):
    _pooled_job(result).pool_grants["global"] += 1


def _mut_split_rack_reach(result):
    job, rack = _single_rack_pooled_job(result)
    other = 1 - rack  # the pooled spec has exactly two racks
    amount = job.pool_grants.pop(f"rack{rack}")
    job.pool_grants[f"rack{other}"] = amount


def _mut_ledger_conservation(result):
    victim = _pooled_job(result).job_id
    result.ledger = MemoryLedger.from_entries([
        entry for entry in result.ledger
        if not (entry.kind == "release" and entry.job_id == victim)
    ])


def _mut_ledger_amount(result):
    victim = _pooled_job(result).job_id
    rebuilt = []
    for entry in result.ledger:
        if entry.job_id == victim and entry.pool_grants:
            pool_id, amount = entry.pool_grants[0]
            grants = ((pool_id, amount + 1),) + entry.pool_grants[1:]
            entry = dataclasses.replace(entry, pool_grants=grants)
        rebuilt.append(entry)
    result.ledger = MemoryLedger.from_entries(rebuilt)


def _mut_walltime_kill_under_none(result):
    result.scheduler_info = {**result.scheduler_info, "kill": "none"}
    job = _completed(result)
    job.state = JobState.KILLED
    job.kill_reason = "walltime"


def _mut_invalid_kill_reason(result):
    job = _completed(result)
    job.state = JobState.KILLED
    job.kill_reason = "cosmic-ray"


def _mut_stray_kill_reason(result):
    _completed(result).kill_reason = "walltime"


def _swap_execution(a, b):
    for attr in ("start_time", "end_time", "assigned_nodes", "pool_grants",
                 "local_grant_per_node", "remote_per_node", "dilation"):
        tmp = getattr(a, attr)
        setattr(a, attr, getattr(b, attr))
        setattr(b, attr, tmp)


def _mut_fcfs_overtake(result):
    done = sorted(
        (j for j in result.jobs if j.state is JobState.COMPLETED),
        key=lambda j: (j.submit_time, j.job_id),
    )
    pair = next(
        (a, b)
        for i, a in enumerate(done)
        for b in done[i + 1:]
        if b.submit_time > a.submit_time + 1.0
        and b.start_time - a.start_time > 1.0
        and a.nodes == b.nodes
    )
    _swap_execution(*pair)


def _mut_fairshare_overtake(result):
    by_user = {}
    for job in result.jobs:
        if job.state is JobState.COMPLETED:
            by_user.setdefault(job.user, []).append(job)
    for jobs in by_user.values():
        jobs.sort(key=lambda j: (j.submit_time, j.job_id))
        for a, b in zip(jobs, jobs[1:]):
            if b.start_time - a.start_time > 1.0 and a.nodes == b.nodes:
                _swap_execution(a, b)
                return
    raise AssertionError("no same-user swappable pair in fairshare base")


MUTATIONS = [
    ("node-overlap", "easy", "fcfs", _mut_node_overlap, "node-oversubscription"),
    ("node-unknown", "easy", "fcfs", _mut_node_unknown, "node-unknown"),
    ("node-downtime", "easy", "fcfs", _mut_node_downtime, "node-downtime"),
    ("pool-overflow", "easy", "fcfs", _mut_pool_overflow, "pool-oversubscription"),
    ("pool-unknown", "easy", "fcfs", _mut_pool_unknown, "pool-unknown"),
    ("promise-broken", "easy", "fcfs", _mut_promise_broken, "promise"),
    ("promise-unknown-job", "easy", "fcfs", _mut_promise_unknown_job, "promise"),
    ("resurrect-cancelled", "easy", "fcfs", _mut_resurrect, "lifecycle"),
    ("non-terminal", "easy", "fcfs", _mut_non_terminal, "lifecycle"),
    ("start-before-submit", "easy", "fcfs", _mut_start_before_submit, "metrics"),
    ("end-before-start", "easy", "fcfs", _mut_end_before_start, "lifecycle"),
    ("duration-skew", "easy", "fcfs", _mut_duration_skew, "metrics"),
    ("split-local", "easy", "fcfs", _mut_split_local, "split"),
    ("split-sum", "easy", "fcfs", _mut_split_sum, "split"),
    ("split-rack-reach", "easy", "fcfs", _mut_split_rack_reach, "split"),
    ("ledger-open-grant", "easy", "fcfs", _mut_ledger_conservation,
     "ledger-conservation"),
    ("ledger-amount", "easy", "fcfs", _mut_ledger_amount, "ledger-mismatch"),
    ("walltime-kill-under-none", "easy", "fcfs",
     _mut_walltime_kill_under_none, "lifecycle"),
    ("invalid-kill-reason", "easy", "fcfs", _mut_invalid_kill_reason,
     "lifecycle"),
    ("stray-kill-reason", "easy", "fcfs", _mut_stray_kill_reason, "lifecycle"),
    ("fcfs-overtake", "none", "fcfs", _mut_fcfs_overtake, "order"),
    ("fairshare-overtake", "none", "fairshare", _mut_fairshare_overtake,
     "order"),
]


@pytest.mark.parametrize(
    "name, backfill, queue, corrupt, expected",
    MUTATIONS,
    ids=[m[0] for m in MUTATIONS],
)
def test_mutation_is_caught_with_right_class(
    name, backfill, queue, corrupt, expected
):
    result = _fresh(backfill, queue)
    corrupt(result)
    report = deep_audit(result)
    classes = {v.invariant for v in report.errors}
    assert expected in classes, (
        f"mutation {name!r} should raise a {expected!r} violation; "
        f"got {sorted(classes) or 'a clean report'}"
    )
    assert not report.ok


def test_pristine_bases_audit_clean():
    for backfill, queue in (("easy", "fcfs"), ("none", "fcfs"),
                            ("none", "fairshare"), ("conservative", "fcfs")):
        report = deep_audit(_base(backfill, queue))
        assert report.ok, (backfill, queue, [str(v) for v in report.errors])


def test_checks_counters_prove_coverage():
    """A clean report with zero checks proves nothing — require that
    every invariant family actually examined facts on the easy base."""
    report = deep_audit(_base())
    for family in ("lifecycle", "node-oversubscription", "node-unknown",
                   "pool-oversubscription", "pool-unknown",
                   "ledger-conservation", "ledger-mismatch", "split",
                   "metrics", "promise"):
        assert report.checks.get(family, 0) > 0, family


def test_raise_if_failed_bridges_to_audit_error():
    from repro.errors import AuditError

    result = _fresh()
    _mut_node_unknown(result)
    report = deep_audit(result)
    with pytest.raises(AuditError):
        report.raise_if_failed()
    # And a clean report stays silent.
    deep_audit(_base()).raise_if_failed()


def test_report_to_dict_is_json_shaped():
    import json

    result = _fresh()
    _mut_pool_overflow(result)
    doc = deep_audit(result).to_dict()
    json.dumps(doc)  # must be serializable as-is
    assert doc["ok"] is False
    assert any(v["invariant"] == "pool-oversubscription"
               for v in doc["violations"])

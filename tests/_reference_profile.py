"""The pre-optimization availability profile and EASY pass, verbatim.

This module preserves the original (pre-sweep-rewrite) implementations
as the *reference semantics* for the equivalence suite
(``test_profile_equivalence.py``): the optimized
:class:`repro.sched.profile.AvailabilityProfile` and the optimized
backfill strategies must produce bit-identical queries, reservations,
and end-to-end schedules.  It lives under ``tests/`` on purpose — it
is not part of the library and will be deleted once the equivalence
suite has survived a few releases.

Nothing here is optimized; that is the point.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.sched.backfill import BackfillStrategy
from repro.sched.base import Scheduler, SchedulerContext, StartDecision, build_scheduler
from repro.sched.profile import Reservation
from repro.workload.job import Job, JobState

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster
    from repro.memdis.allocator import PoolAllocator
    from repro.sched.placement import PlacementPolicy

_OVERRUN_GRACE = 1.0
_EPS = 1e-9
_BF_EPS = 1e-6  # backfill.py's epsilon


class _ReferenceProfile:
    """The original AvailabilityProfile: full rescans per query."""

    def __init__(
        self,
        cluster: "Cluster",
        running: Iterable[Job],
        now: float,
        duration_of: Callable[[Job], float],
    ) -> None:
        self._cluster = cluster
        self._now = now
        self._base_free: FrozenSet[int] = frozenset(
            node.node_id for node in cluster.free_nodes()
        )
        self._base_pool_free: Dict[str, int] = {
            pool.pool_id: pool.free for pool in cluster.all_pools()
        }
        self._releases: List[Tuple[float, Tuple[int, ...], Dict[str, int]]] = []
        for job in running:
            if job.start_time is None:
                continue
            est_end = job.start_time + duration_of(job)
            if est_end <= now:
                est_end = now + _OVERRUN_GRACE
            self._releases.append(
                (est_end, tuple(job.assigned_nodes), dict(job.pool_grants))
            )
        self._releases.sort(key=lambda item: item[0])
        self._reservations: List[Reservation] = []

    @property
    def now(self) -> float:
        return self._now

    @property
    def reservations(self) -> List[Reservation]:
        return list(self._reservations)

    def add_reservation(self, reservation: Reservation) -> Reservation:
        self._reservations.append(reservation)
        return reservation

    def remove_reservation(self, reservation: Reservation) -> None:
        self._reservations.remove(reservation)

    def breakpoints(self, after: Optional[float] = None) -> List[float]:
        start = self._now if after is None else max(after, self._now)
        times = {start}
        for time, _, _ in self._releases:
            if time > start:
                times.add(time)
        for res in self._reservations:
            if res.start > start:
                times.add(res.start)
            if res.end > start:
                times.add(res.end)
        return sorted(times)

    def free_at(self, time: float) -> Tuple[FrozenSet[int], Dict[str, int]]:
        free = set(self._base_free)
        pool = dict(self._base_pool_free)
        for rel_time, node_ids, grants in self._releases:
            if rel_time <= time + _EPS:
                free.update(node_ids)
                for pool_id, amount in grants.items():
                    pool[pool_id] = pool.get(pool_id, 0) + amount
        for res in self._reservations:
            if res.start <= time + _EPS and time < res.end - _EPS:
                free.difference_update(res.node_ids)
                for pool_id, amount in res.pool_grants:
                    pool[pool_id] = pool.get(pool_id, 0) - amount
        return frozenset(free), pool

    def window_free(
        self, start: float, duration: float
    ) -> Tuple[FrozenSet[int], Dict[str, int]]:
        end = start + duration
        free, pool = self.free_at(start)
        pool_min = dict(pool)
        if self._reservations:
            claimed: set[int] = set()
            events: List[Tuple[float, Dict[str, int], int]] = []
            for res in self._reservations:
                if start + _EPS < res.start < end - _EPS:
                    claimed.update(res.node_ids)
                    events.append((res.start, dict(res.pool_grants), -1))
                if start + _EPS < res.end < end - _EPS:
                    events.append((res.end, dict(res.pool_grants), +1))
            for rel_time, _, grants in self._releases:
                if start + _EPS < rel_time < end - _EPS and grants:
                    events.append((rel_time, grants, +1))
            if claimed:
                free = frozenset(free - claimed)
            if events:
                level = dict(pool)
                for _, grants, sign in sorted(events, key=lambda ev: ev[0]):
                    for pool_id, amount in grants.items():
                        level[pool_id] = level.get(pool_id, 0) + sign * amount
                        if level[pool_id] < pool_min.get(pool_id, 0):
                            pool_min[pool_id] = level[pool_id]
        return free, pool_min

    def earliest_start(
        self,
        job: Job,
        duration: float,
        remote_per_node: int,
        placement: "PlacementPolicy",
        allocator: "PoolAllocator",
        after: Optional[float] = None,
        memory_aware: bool = True,
    ) -> Optional[Reservation]:
        for t in self.breakpoints(after=after):
            free, pool_min = self.window_free(t, duration)
            if len(free) < job.nodes:
                continue
            node_ids = placement.select(
                self._cluster, free, job.nodes, remote_per_node, pool_min
            )
            if node_ids is None:
                continue
            if not memory_aware or remote_per_node == 0:
                plan: Optional[Dict[str, int]] = {}
            else:
                plan = allocator.plan(
                    self._cluster, node_ids, remote_per_node, free_override=pool_min
                )
                if plan is None:
                    continue
            return Reservation(
                job_id=job.job_id,
                start=t,
                end=t + duration,
                node_ids=tuple(node_ids),
                pool_grants=tuple(sorted((plan or {}).items())),
            )
        return None


# ----------------------------------------------------------------------
# reference strategies: the original queue-walking loops
# ----------------------------------------------------------------------
def _reference_start_in_order(
    ctx: SchedulerContext, sched: Scheduler
) -> List[StartDecision]:
    """Original phase 1: re-sort the whole pending queue per start."""
    started: List[StartDecision] = []
    while True:
        pending = [job for job in ctx.queue if job.state is JobState.PENDING]
        if not pending:
            return started
        ordered = sched.queue_policy.order(pending, ctx.now)
        decision = sched.try_start_now(ctx, ordered[0])
        if decision is None:
            return started
        ctx.start_job(decision)
        started.append(decision)


class _ReferenceNoBackfill(BackfillStrategy):
    name = "none"

    def run(self, ctx: SchedulerContext, sched: Scheduler) -> List[StartDecision]:
        return _reference_start_in_order(ctx, sched)


class _ReferenceEasyBackfill(BackfillStrategy):
    """Original EASY: fresh trial profile per long candidate."""

    name = "easy"

    def __init__(self, depth: int = 128, memory_aware: bool = True) -> None:
        self.depth = depth
        self.memory_aware = memory_aware

    def run(self, ctx: SchedulerContext, sched: Scheduler) -> List[StartDecision]:
        started = _reference_start_in_order(ctx, sched)
        pending = [job for job in ctx.queue if job.state is JobState.PENDING]
        if not pending:
            return started
        ordered = sched.queue_policy.order(pending, ctx.now)
        head, rest = ordered[0], ordered[1 : 1 + self.depth]
        allocator = sched.resolve_allocator(ctx.cluster)

        head_split = sched.split_for(head, ctx.cluster)
        head_dur = sched.est_duration(head, ctx.cluster)
        profile = sched.build_profile(ctx)
        head_res = profile.earliest_start(
            head,
            head_dur,
            head_split.remote,
            sched.placement,
            allocator,
            memory_aware=self.memory_aware,
        )
        shadow: Optional[float] = None
        if head_res is not None:
            shadow = head_res.start
            ctx.record_promise(head.job_id, shadow)

        for job in rest:
            decision = sched.try_start_now(ctx, job)
            if decision is None:
                continue
            dur = sched.est_duration(job, ctx.cluster)
            if shadow is None or ctx.now + dur <= shadow + _BF_EPS:
                ctx.start_job(decision)
                started.append(decision)
                continue
            trial = sched.build_profile(ctx)
            trial.add_reservation(
                Reservation(
                    job_id=job.job_id,
                    start=ctx.now,
                    end=ctx.now + dur,
                    node_ids=decision.node_ids,
                    pool_grants=tuple(sorted(decision.plan.items())),
                )
            )
            head_retry = trial.earliest_start(
                head,
                head_dur,
                head_split.remote,
                sched.placement,
                allocator,
                memory_aware=self.memory_aware,
            )
            if head_retry is not None and head_retry.start <= shadow + _BF_EPS:
                ctx.start_job(decision)
                started.append(decision)
        return started


class _ReferenceScheduler(Scheduler):
    """A Scheduler whose profiles are reference profiles."""

    def build_profile(self, ctx: SchedulerContext) -> _ReferenceProfile:
        return _ReferenceProfile(
            ctx.cluster, ctx.running, ctx.now, self.duration_of_running
        )


def reference_scheduler(**kwargs) -> Scheduler:
    """``build_scheduler(**kwargs)`` with reference profile + strategies.

    The conservative branch uses the preserved pre-interval-index pass
    from ``_reference_conservative.py`` (fresh profile per cycle, no
    release folding) — the stock strategy now assumes profile methods
    the reference profile deliberately lacks.
    """
    from ._reference_conservative import _ReferenceConservativeBackfill

    stock = build_scheduler(**kwargs)
    sched = _ReferenceScheduler(
        queue_policy=stock.queue_policy,
        backfill=stock.backfill,
        placement=stock.placement,
        split_policy=stock.split_policy,
        allocator=stock._allocator,
        penalty=stock.penalty,
        gate=stock.gate,
        kill_policy=stock.kill_policy,
    )
    name = kwargs.get("backfill", "easy")
    if name in ("none", "nobackfill", "fcfs"):
        sched.backfill = _ReferenceNoBackfill()
    elif name == "easy":
        sched.backfill = _ReferenceEasyBackfill(
            memory_aware=kwargs.get("memory_aware", True)
        )
    else:
        sched.backfill = _ReferenceConservativeBackfill()
    return sched

"""Tests for the hardware model: spec, node, pool, rack, fabric, cluster."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.cluster import Cluster, ClusterSpec, MemoryPool, Node, NodeSpec, NodeState, PoolSpec
from repro.errors import AllocationError, ConfigurationError
from repro.units import GiB


class TestSpecs:
    def test_defaults_valid(self):
        ClusterSpec().validate()

    def test_num_racks_ceil(self):
        spec = ClusterSpec(num_nodes=10, nodes_per_rack=4)
        assert spec.num_racks == 3

    def test_totals(self):
        spec = ClusterSpec(
            num_nodes=4,
            nodes_per_rack=2,
            node=NodeSpec(local_mem=10 * GiB),
            pool=PoolSpec(rack_pool=5 * GiB, global_pool=7 * GiB),
        )
        assert spec.total_local_mem == 40 * GiB
        assert spec.total_pool_mem == 2 * 5 * GiB + 7 * GiB
        assert spec.total_mem == spec.total_local_mem + spec.total_pool_mem

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 0},
            {"num_nodes": -4},
            {"nodes_per_rack": 0},
        ],
    )
    def test_invalid_counts(self, kwargs):
        with pytest.raises(ConfigurationError):
            ClusterSpec(**kwargs).validate()

    def test_invalid_node(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(node=NodeSpec(cores=0)).validate()

    def test_invalid_pool(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(pool=PoolSpec(rack_pool=-1)).validate()

    def test_fat_node_has_no_pool(self):
        spec = ClusterSpec.fat_node(num_nodes=32, local_mem="512GiB")
        assert spec.total_pool_mem == 0
        assert spec.node.local_mem == 512 * GiB
        assert not spec.pool.disaggregated

    def test_thin_node_preserves_total_dram(self):
        fat = ClusterSpec.fat_node(num_nodes=32, local_mem="512GiB")
        thin = ClusterSpec.thin_node(
            num_nodes=32, local_mem="128GiB", fat_local_mem="512GiB",
            pool_fraction=1.0, reach="global",
        )
        assert thin.total_mem == fat.total_mem

    def test_thin_node_pool_fraction_halves_pool(self):
        thin = ClusterSpec.thin_node(
            num_nodes=32, local_mem="128GiB", fat_local_mem="512GiB",
            pool_fraction=0.5, reach="global",
        )
        assert thin.pool.global_pool == 32 * (512 - 128) * GiB // 2

    def test_thin_node_rack_reach_splits_pool(self):
        thin = ClusterSpec.thin_node(
            num_nodes=32, nodes_per_rack=8, local_mem="128GiB",
            fat_local_mem="512GiB", reach="rack",
        )
        assert thin.pool.rack_pool == 32 * (512 - 128) * GiB // 4
        assert thin.pool.global_pool == 0

    def test_thin_node_local_exceeding_fat_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec.thin_node(local_mem="768GiB", fat_local_mem="512GiB")

    def test_thin_node_bad_reach_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec.thin_node(reach="galaxy")

    def test_dict_roundtrip(self):
        spec = ClusterSpec.thin_node(num_nodes=16, nodes_per_rack=4)
        again = ClusterSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_from_dict_parses_mem_strings(self):
        spec = ClusterSpec.from_dict(
            {"num_nodes": 4, "node": {"local_mem": "32GiB"}, "pool": {"global_pool": "1TiB"}}
        )
        assert spec.node.local_mem == 32 * GiB
        assert spec.pool.global_pool == 1024 * GiB


class TestNode:
    def test_allocate_release_cycle(self):
        node = Node(0, 0, cores=8, local_mem=16 * GiB)
        assert node.is_free
        node.allocate(job_id=7, local_grant=8 * GiB)
        assert not node.is_free
        assert node.job_id == 7
        assert node.local_grant == 8 * GiB
        node.release(job_id=7)
        assert node.is_free
        assert node.local_grant == 0

    def test_double_allocate_rejected(self):
        node = Node(0, 0, 8, 16 * GiB)
        node.allocate(1, 0)
        with pytest.raises(AllocationError):
            node.allocate(2, 0)

    def test_release_wrong_owner_rejected(self):
        node = Node(0, 0, 8, 16 * GiB)
        node.allocate(1, 0)
        with pytest.raises(AllocationError):
            node.release(2)

    def test_release_idle_rejected(self):
        node = Node(0, 0, 8, 16 * GiB)
        with pytest.raises(AllocationError):
            node.release(1)

    def test_grant_beyond_capacity_rejected(self):
        node = Node(0, 0, 8, 16 * GiB)
        with pytest.raises(AllocationError):
            node.allocate(1, 17 * GiB)

    def test_negative_grant_rejected(self):
        node = Node(0, 0, 8, 16 * GiB)
        with pytest.raises(AllocationError):
            node.allocate(1, -1)

    def test_down_state(self):
        node = Node(0, 0, 8, 16 * GiB)
        node.mark_down()
        assert node.state is NodeState.DOWN
        assert not node.is_free
        with pytest.raises(AllocationError):
            node.allocate(1, 0)
        node.mark_up()
        assert node.is_free

    def test_busy_node_cannot_go_down(self):
        node = Node(0, 0, 8, 16 * GiB)
        node.allocate(1, 0)
        with pytest.raises(AllocationError):
            node.mark_down()


class TestMemoryPool:
    def test_allocate_release(self):
        pool = MemoryPool("p", 100)
        pool.allocate(1, 40)
        assert pool.used == 40
        assert pool.free == 60
        assert pool.grant_of(1) == 40
        freed = pool.release(1)
        assert freed == 40
        assert pool.used == 0

    def test_additive_grants(self):
        pool = MemoryPool("p", 100)
        pool.allocate(1, 30)
        pool.allocate(1, 20)
        assert pool.grant_of(1) == 50
        assert pool.release(1) == 50

    def test_over_capacity_rejected(self):
        pool = MemoryPool("p", 100)
        pool.allocate(1, 80)
        with pytest.raises(AllocationError):
            pool.allocate(2, 30)
        assert pool.grant_of(2) == 0  # failed alloc left no residue

    def test_zero_allocation_is_noop(self):
        pool = MemoryPool("p", 100)
        pool.allocate(1, 0)
        assert pool.active_jobs == 0
        with pytest.raises(AllocationError):
            pool.release(1)

    def test_release_unknown_job_rejected(self):
        pool = MemoryPool("p", 100)
        with pytest.raises(AllocationError):
            pool.release(99)

    def test_release_if_held(self):
        pool = MemoryPool("p", 100)
        assert pool.release_if_held(1) == 0
        pool.allocate(1, 10)
        assert pool.release_if_held(1) == 10

    def test_negative_allocation_rejected(self):
        pool = MemoryPool("p", 100)
        with pytest.raises(AllocationError):
            pool.allocate(1, -5)

    def test_utilization(self):
        pool = MemoryPool("p", 200)
        pool.allocate(1, 50)
        assert pool.utilization == 0.25
        assert MemoryPool("empty", 0).utilization == 0.0

    @given(
        st.lists(
            st.tuples(st.integers(1, 20), st.integers(0, 30)),
            max_size=50,
        )
    )
    def test_property_conservation(self, ops):
        """Random grant/release interleavings never corrupt accounting."""
        pool = MemoryPool("p", 1000)
        held: dict[int, int] = {}
        for job_id, amount in ops:
            if job_id in held:
                freed = pool.release(job_id)
                assert freed == held.pop(job_id)
            else:
                if amount <= pool.free and amount > 0:
                    pool.allocate(job_id, amount)
                    held[job_id] = amount
            assert pool.used == sum(held.values())
            assert 0 <= pool.used <= pool.capacity


class TestCluster:
    def test_construction_shapes(self, pooled_cluster):
        assert pooled_cluster.num_nodes == 8
        assert pooled_cluster.num_racks == 2
        assert pooled_cluster.rack(0).num_nodes == 4
        assert pooled_cluster.global_pool is not None
        assert all(rack.pool is not None for rack in pooled_cluster.racks)
        assert len(pooled_cluster.all_pools()) == 3

    def test_uneven_last_rack(self):
        spec = ClusterSpec(num_nodes=10, nodes_per_rack=4)
        cluster = Cluster(spec)
        assert [rack.num_nodes for rack in cluster.racks] == [4, 4, 2]
        # Node ids map to the right racks.
        assert cluster.node(9).rack_id == 2

    def test_allocate_release_nodes(self, tiny_cluster):
        tiny_cluster.allocate_nodes(1, [0, 2], local_grant=8 * GiB)
        assert tiny_cluster.free_node_count == 2
        assert not tiny_cluster.node(0).is_free
        assert tiny_cluster.node(1).is_free
        tiny_cluster.release_nodes(1, [0, 2])
        assert tiny_cluster.free_node_count == 4

    def test_allocate_nodes_atomic_on_failure(self, tiny_cluster):
        tiny_cluster.allocate_nodes(1, [2], local_grant=0)
        with pytest.raises(AllocationError):
            tiny_cluster.allocate_nodes(2, [0, 1, 2], local_grant=0)
        # Nodes 0 and 1 must have been rolled back.
        assert tiny_cluster.node(0).is_free
        assert tiny_cluster.node(1).is_free
        assert tiny_cluster.free_node_count == 3

    def test_free_nodes_deterministic_order(self, tiny_cluster):
        tiny_cluster.allocate_nodes(1, [1], local_grant=0)
        assert [n.node_id for n in tiny_cluster.free_nodes()] == [0, 2, 3]

    def test_allocate_pool_atomic(self, pooled_cluster):
        # rack0 pool has 64 GiB; ask rack0=50 and global=more than free.
        pooled_cluster.global_pool.allocate(99, 120 * GiB)
        with pytest.raises(AllocationError):
            pooled_cluster.allocate_pool(
                1, {"rack0": 50 * GiB, "global": 20 * GiB}
            )
        assert pooled_cluster.rack(0).pool.grant_of(1) == 0

    def test_release_pool_returns_total(self, pooled_cluster):
        pooled_cluster.allocate_pool(1, {"rack0": 10 * GiB, "global": 5 * GiB})
        freed = pooled_cluster.release_pool(1)
        assert freed == 15 * GiB
        assert pooled_cluster.total_pool_used == 0

    def test_pool_by_id_unknown_raises(self, pooled_cluster):
        with pytest.raises(KeyError):
            pooled_cluster.pool_by_id("rack99")

    def test_snapshot(self, pooled_cluster):
        pooled_cluster.allocate_nodes(1, [0, 1], local_grant=4 * GiB)
        pooled_cluster.allocate_pool(1, {"rack0": 8 * GiB})
        snap = pooled_cluster.snapshot()
        assert snap["free_nodes"] == 6
        assert snap["busy_nodes"] == 2
        assert snap["local_mem_granted"] == 8 * GiB
        assert snap["pool_used"] == 8 * GiB


class TestFabric:
    def test_single_rack_job_reaches_rack_and_global(self, pooled_cluster):
        pools = pooled_cluster.fabric.reachable_pools([0, 1, 2])
        assert [p.pool_id for p in pools] == ["rack0", "global"]

    def test_cross_rack_job_reaches_global_only(self, pooled_cluster):
        pools = pooled_cluster.fabric.reachable_pools([0, 4])
        assert [p.pool_id for p in pools] == ["global"]

    def test_pools_for_node_nearest_first(self, pooled_cluster):
        pools = pooled_cluster.fabric.pools_for_node(5)
        assert [p.pool_id for p in pools] == ["rack1", "global"]

    def test_no_pools_configured(self, tiny_cluster):
        assert tiny_cluster.fabric.pools_for_node(0) == []
        assert tiny_cluster.fabric.reachable_pools([0, 1]) == []

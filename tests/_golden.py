"""Pinned golden digests for the end-to-end differential suites.

The equivalence suites used to run every workload twice — optimized
stack vs a preserved copy of the pre-optimization code.  The reference
copies are gone; the anchor is now a *pinned digest* of each run's
decisions: the complete schedule record, every backfill promise, and
the cycle count, canonicalized to JSON and hashed.  A digest mismatch
means the scheduler's decisions changed — exactly what the old
double-run asserted, at half the cost and without keeping dead code
alive in the test tree.

``tools/gen_golden.py`` regenerates ``tests/golden/*.json`` from the
``golden_cases()`` iterator each suite exports.  Regenerating is a
*deliberate re-baselining*: only do it when a decision change is
intended and reviewed, never to make a red suite green.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

_cache: Dict[str, Dict[str, str]] = {}


def canonical_document(result) -> Dict[str, Any]:
    """Everything decision-shaped in a :class:`SimulationResult`,
    reduced to plain JSON types with a stable ordering."""
    record = [
        [
            job.job_id,
            job.state.value,
            job.start_time,
            job.end_time,
            list(job.assigned_nodes),
            sorted([pool_id, amount] for pool_id, amount in job.pool_grants.items()),
            job.dilation,
        ]
        for job in sorted(result.jobs, key=lambda j: j.job_id)
    ]
    promises = [
        [promise.job_id, promise.decided_at, promise.promised_start]
        for _, promise in sorted(result.promises.items())
    ]
    return {"record": record, "promises": promises, "cycles": result.cycles}


def digest_result(result) -> str:
    payload = json.dumps(
        canonical_document(result), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def load_golden(name: str) -> Dict[str, str]:
    if name not in _cache:
        path = GOLDEN_DIR / f"{name}.json"
        assert path.exists(), (
            f"golden file {path} is missing — generate it with "
            f"`PYTHONPATH=src python tools/gen_golden.py --only {name}`"
        )
        _cache[name] = json.loads(path.read_text())
    return _cache[name]


def assert_matches_golden(name: str, token: str, result) -> None:
    golden = load_golden(name)
    assert token in golden, (
        f"no golden digest for case {token!r} in {name}.json — the case "
        f"grid changed; regenerate with tools/gen_golden.py"
    )
    digest = digest_result(result)
    assert digest == golden[token], (
        f"schedule for case {token!r} diverged from its pinned golden "
        f"digest ({digest[:12]}… != {golden[token][:12]}…). The "
        f"scheduler's decisions changed: either a regression, or an "
        f"intended change that requires re-baselining via "
        f"tools/gen_golden.py and review of the diff."
    )

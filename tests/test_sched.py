"""Tests for the scheduling framework: queue policies, placement,
availability profiles, and the scheduler facade helpers."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec, PoolSpec
from repro.errors import ConfigurationError
from repro.memdis import GlobalPoolAllocator, HybridAllocator, RackLocalAllocator
from repro.sched import (
    AvailabilityProfile,
    FCFSPolicy,
    FirstFitPlacement,
    LJFPolicy,
    MinRemotePlacement,
    RackPackPlacement,
    Reservation,
    Scheduler,
    SJFPolicy,
    SpreadPlacement,
    UNICEFPolicy,
    WFPPolicy,
    build_scheduler,
    placement_for,
    queue_policy_for,
)
from repro.sched.base import KillPolicy, pool_pressure
from repro.units import GiB
from repro.workload import Job, JobState

from .conftest import make_job


class TestQueuePolicies:
    def make_queue(self):
        return [
            make_job(job_id=1, submit=0.0, nodes=8, walltime=3600, runtime=1800),
            make_job(job_id=2, submit=10.0, nodes=1, walltime=600, runtime=300),
            make_job(job_id=3, submit=20.0, nodes=32, walltime=7200, runtime=3600),
        ]

    def test_fcfs_by_submit(self):
        ordered = FCFSPolicy().order(self.make_queue(), now=100.0)
        assert [j.job_id for j in ordered] == [1, 2, 3]

    def test_sjf_by_walltime(self):
        ordered = SJFPolicy().order(self.make_queue(), now=100.0)
        assert [j.job_id for j in ordered] == [2, 1, 3]

    def test_ljf_by_nodes(self):
        ordered = LJFPolicy().order(self.make_queue(), now=100.0)
        assert [j.job_id for j in ordered] == [3, 1, 2]

    def test_wfp_favors_old_large(self):
        # Equal nodes; the one waiting much longer wins.
        a = make_job(job_id=1, submit=0.0, nodes=4, walltime=3600)
        b = make_job(job_id=2, submit=3500.0, nodes=4, walltime=3600)
        ordered = WFPPolicy().order([b, a], now=3600.0)
        assert ordered[0].job_id == 1

    def test_wfp_scales_with_nodes(self):
        a = make_job(job_id=1, submit=0.0, nodes=1, walltime=3600)
        b = make_job(job_id=2, submit=0.0, nodes=64, walltime=3600)
        ordered = WFPPolicy().order([a, b], now=1800.0)
        assert ordered[0].job_id == 2

    def test_unicef_favors_small_short(self):
        small = make_job(job_id=1, submit=0.0, nodes=1, walltime=600)
        big = make_job(job_id=2, submit=0.0, nodes=64, walltime=7200)
        ordered = UNICEFPolicy().order([big, small], now=300.0)
        assert ordered[0].job_id == 1

    def test_zero_wait_ties_break_by_submit(self):
        queue = self.make_queue()
        ordered = WFPPolicy().order(queue, now=0.0)
        # All scores <= 0 at their submit instants; falls back to FCFS order.
        assert [j.job_id for j in ordered] == [1, 2, 3]

    def test_factory(self):
        for name in ("fcfs", "sjf", "ljf", "wfp", "unicef"):
            assert queue_policy_for(name).name == name
        with pytest.raises(ConfigurationError):
            queue_policy_for("lottery")

    def test_wfp_bad_exponent(self):
        with pytest.raises(ConfigurationError):
            WFPPolicy(exponent=0)


class TestPlacement:
    def test_first_fit_lowest_ids(self, pooled_cluster):
        free = frozenset(range(8))
        assert FirstFitPlacement().select(pooled_cluster, free, 3, 0) == [0, 1, 2]

    def test_insufficient_nodes(self, pooled_cluster):
        free = frozenset([1, 5])
        assert FirstFitPlacement().select(pooled_cluster, free, 3, 0) is None

    def test_rack_pack_minimizes_racks(self, pooled_cluster):
        # rack0 has 2 free, rack1 has 3 free: a 3-node job should land
        # entirely in rack1.
        free = frozenset([0, 1, 5, 6, 7])
        nodes = RackPackPlacement().select(pooled_cluster, free, 3, 0)
        assert nodes == [5, 6, 7]

    def test_rack_pack_spills_in_rack_order(self, pooled_cluster):
        free = frozenset([0, 1, 5, 6, 7])
        nodes = RackPackPlacement().select(pooled_cluster, free, 4, 0)
        assert nodes == [5, 6, 7, 0]

    def test_min_remote_prefers_pool_space(self, pooled_cluster):
        # Drain rack1's pool; min_remote should prefer rack0 now.
        pooled_cluster.rack(1).pool.allocate(99, 60 * GiB)
        free = frozenset([0, 1, 4, 5])
        nodes = MinRemotePlacement().select(pooled_cluster, free, 2, 4 * GiB)
        assert nodes == [0, 1]

    def test_min_remote_uses_override_hint(self, pooled_cluster):
        free = frozenset([0, 1, 4, 5])
        hint = {"rack0": 0, "rack1": 64 * GiB, "global": 0}
        nodes = MinRemotePlacement().select(
            pooled_cluster, free, 2, 4 * GiB, pool_free=hint
        )
        assert nodes == [4, 5]

    def test_spread_round_robins(self, pooled_cluster):
        free = frozenset(range(8))
        nodes = SpreadPlacement().select(pooled_cluster, free, 4, 0)
        assert nodes == [0, 4, 1, 5]

    def test_spread_handles_uneven_racks(self, pooled_cluster):
        free = frozenset([0, 4, 5, 6])
        nodes = SpreadPlacement().select(pooled_cluster, free, 4, 0)
        assert sorted(nodes) == [0, 4, 5, 6]

    def test_factory(self):
        for name in ("first_fit", "rack_pack", "min_remote", "spread"):
            assert placement_for(name).name == name
        with pytest.raises(ConfigurationError):
            placement_for("teleport")


def running_job(job_id, nodes, start, walltime, pool_grants=None, dilation=0.0):
    job = make_job(
        job_id=job_id,
        submit=start,
        nodes=len(nodes),
        walltime=walltime,
        runtime=walltime,
        mem=1 * GiB,
    )
    job.state = JobState.RUNNING
    job.start_time = start
    job.assigned_nodes = list(nodes)
    job.pool_grants = dict(pool_grants or {})
    job.dilation = dilation
    return job


class TestAvailabilityProfile:
    def setup_cluster(self):
        spec = ClusterSpec(
            name="p",
            num_nodes=4,
            nodes_per_rack=4,
            node=NodeSpec(cores=8, local_mem=16 * GiB),
            pool=PoolSpec(global_pool=8 * GiB),
        )
        return Cluster(spec)

    def test_free_at_future_release(self):
        cluster = self.setup_cluster()
        job = running_job(1, [0, 1], start=0.0, walltime=100.0,
                          pool_grants={"global": 2 * GiB})
        cluster.allocate_nodes(1, [0, 1], 0)
        cluster.allocate_pool(1, {"global": 2 * GiB})
        profile = AvailabilityProfile(cluster, [job], now=10.0,
                                      duration_of=lambda j: j.walltime)
        free_now, pool_now = profile.free_at(10.0)
        assert free_now == frozenset([2, 3])
        assert pool_now["global"] == 6 * GiB
        free_later, pool_later = profile.free_at(100.0)
        assert free_later == frozenset([0, 1, 2, 3])
        assert pool_later["global"] == 8 * GiB

    def test_overrun_job_clamped(self):
        cluster = self.setup_cluster()
        job = running_job(1, [0], start=0.0, walltime=100.0)
        cluster.allocate_nodes(1, [0], 0)
        # now is already past the estimated end; resources are expected
        # "any moment", not in the past.
        profile = AvailabilityProfile(cluster, [job], now=500.0,
                                      duration_of=lambda j: j.walltime)
        free, _ = profile.free_at(500.0)
        assert 0 not in free
        free, _ = profile.free_at(501.5)
        assert 0 in free

    def test_window_free_excludes_mid_window_reservation(self):
        cluster = self.setup_cluster()
        profile = AvailabilityProfile(cluster, [], now=0.0,
                                      duration_of=lambda j: j.walltime)
        profile.add_reservation(
            Reservation(9, start=50.0, end=150.0, node_ids=(1, 2),
                        pool_grants=(("global", 4 * GiB),))
        )
        free, pool_min = profile.window_free(0.0, 100.0)
        assert free == frozenset([0, 3])
        assert pool_min["global"] == 4 * GiB
        # A window ending before the reservation is unaffected.
        free2, pool2 = profile.window_free(0.0, 50.0)
        assert free2 == frozenset([0, 1, 2, 3])
        assert pool2["global"] == 8 * GiB

    def test_earliest_start_immediate(self):
        cluster = self.setup_cluster()
        profile = AvailabilityProfile(cluster, [], now=5.0,
                                      duration_of=lambda j: j.walltime)
        job = make_job(job_id=7, nodes=2, mem=1 * GiB)
        res = profile.earliest_start(
            job, 100.0, 0, FirstFitPlacement(), GlobalPoolAllocator()
        )
        assert res.start == 5.0
        assert res.node_ids == (0, 1)
        assert res.plan == {}

    def test_earliest_start_waits_for_nodes(self):
        cluster = self.setup_cluster()
        blocker = running_job(1, [0, 1, 2], start=0.0, walltime=100.0)
        cluster.allocate_nodes(1, [0, 1, 2], 0)
        profile = AvailabilityProfile(cluster, [blocker], now=10.0,
                                      duration_of=lambda j: j.walltime)
        job = make_job(job_id=7, nodes=3, mem=1 * GiB)
        res = profile.earliest_start(
            job, 50.0, 0, FirstFitPlacement(), GlobalPoolAllocator()
        )
        assert res.start == 100.0
        assert set(res.node_ids) <= {0, 1, 2, 3}

    def test_earliest_start_waits_for_pool(self):
        cluster = self.setup_cluster()
        holder = running_job(1, [0], start=0.0, walltime=200.0,
                             pool_grants={"global": 7 * GiB})
        cluster.allocate_nodes(1, [0], 0)
        cluster.allocate_pool(1, {"global": 7 * GiB})
        profile = AvailabilityProfile(cluster, [holder], now=0.0,
                                      duration_of=lambda j: j.walltime)
        job = make_job(job_id=7, nodes=1, mem=20 * GiB)  # needs 4 GiB remote
        res = profile.earliest_start(
            job, 50.0, 4 * GiB, FirstFitPlacement(), GlobalPoolAllocator()
        )
        assert res.start == 200.0
        assert res.plan == {"global": 4 * GiB}

    def test_earliest_start_memory_unaware_ignores_pool(self):
        cluster = self.setup_cluster()
        holder = running_job(1, [0], start=0.0, walltime=200.0,
                             pool_grants={"global": 7 * GiB})
        cluster.allocate_nodes(1, [0], 0)
        cluster.allocate_pool(1, {"global": 7 * GiB})
        profile = AvailabilityProfile(cluster, [holder], now=0.0,
                                      duration_of=lambda j: j.walltime)
        job = make_job(job_id=7, nodes=1, mem=20 * GiB)
        res = profile.earliest_start(
            job, 50.0, 4 * GiB, FirstFitPlacement(), GlobalPoolAllocator(),
            memory_aware=False,
        )
        assert res.start == 0.0  # blind to the pool bottleneck
        assert res.plan == {}

    def test_earliest_start_respects_reservations(self):
        cluster = self.setup_cluster()
        profile = AvailabilityProfile(cluster, [], now=0.0,
                                      duration_of=lambda j: j.walltime)
        profile.add_reservation(
            Reservation(9, start=10.0, end=100.0, node_ids=(0, 1, 2),
                        pool_grants=())
        )
        job = make_job(job_id=7, nodes=2, mem=1 * GiB)
        # 20-second job: would overlap the reservation if started now on
        # nodes 0-1; only node 3 stays free throughout, so it must wait
        # until the reservation ends.
        res = profile.earliest_start(
            job, 20.0, 0, FirstFitPlacement(), GlobalPoolAllocator()
        )
        assert res.start == 100.0

    def test_earliest_start_impossible_returns_none(self):
        cluster = self.setup_cluster()
        profile = AvailabilityProfile(cluster, [], now=0.0,
                                      duration_of=lambda j: j.walltime)
        job = make_job(job_id=7, nodes=10, mem=1 * GiB)  # > 4 nodes
        assert profile.earliest_start(
            job, 10.0, 0, FirstFitPlacement(), GlobalPoolAllocator()
        ) is None

    def test_remove_reservation(self):
        cluster = self.setup_cluster()
        profile = AvailabilityProfile(cluster, [], now=0.0,
                                      duration_of=lambda j: j.walltime)
        res = profile.add_reservation(
            Reservation(9, 0.0, 100.0, (0, 1, 2, 3), ())
        )
        job = make_job(job_id=7, nodes=1, mem=1 * GiB)
        first = profile.earliest_start(
            job, 10.0, 0, FirstFitPlacement(), GlobalPoolAllocator()
        )
        assert first.start == 100.0
        profile.remove_reservation(res)
        second = profile.earliest_start(
            job, 10.0, 0, FirstFitPlacement(), GlobalPoolAllocator()
        )
        assert second.start == 0.0


class TestSchedulerFacade:
    def test_build_scheduler_strings(self):
        sched = build_scheduler(
            queue="wfp", backfill="conservative", placement="rack_pack",
            allocator="hybrid", penalty={"kind": "linear", "beta": 0.4},
            gate="pressure", kill_policy="strict",
        )
        info = sched.describe()
        assert info["queue"] == "wfp"
        assert info["backfill"] == "conservative"
        assert info["placement"] == "rack_pack"
        assert info["gate"] == "pressure"
        assert info["kill"] == "strict"

    def test_allocator_auto_resolution(self):
        rack_only = Cluster(ClusterSpec(
            num_nodes=4, nodes_per_rack=2,
            pool=PoolSpec(rack_pool=8 * GiB),
        ))
        global_only = Cluster(ClusterSpec(
            num_nodes=4, nodes_per_rack=2,
            pool=PoolSpec(global_pool=8 * GiB),
        ))
        both = Cluster(ClusterSpec(
            num_nodes=4, nodes_per_rack=2,
            pool=PoolSpec(rack_pool=8 * GiB, global_pool=8 * GiB),
        ))
        assert isinstance(Scheduler().resolve_allocator(rack_only), RackLocalAllocator)
        assert isinstance(Scheduler().resolve_allocator(global_only), GlobalPoolAllocator)
        assert isinstance(Scheduler().resolve_allocator(both), HybridAllocator)

    def test_fits_machine(self, pooled_cluster):
        sched = Scheduler()
        ok = make_job(job_id=1, nodes=8, mem=16 * GiB)
        assert sched.fits_machine(ok, pooled_cluster)
        too_many_nodes = make_job(job_id=2, nodes=9, mem=1 * GiB)
        assert not sched.fits_machine(too_many_nodes, pooled_cluster)
        # 8 nodes × (all of local) + remote beyond every pool's reach:
        # per-node remote 40 GiB × 8 = 320 GiB > 64+64+128 pool total.
        too_much_mem = make_job(job_id=3, nodes=8, mem=56 * GiB)
        assert not sched.fits_machine(too_much_mem, pooled_cluster)
        # A single-node job with big memory is fine via rack + global.
        single = make_job(job_id=4, nodes=1, mem=200 * GiB)
        assert sched.fits_machine(single, pooled_cluster)

    def test_fits_machine_no_pool(self, tiny_cluster):
        sched = Scheduler()
        local_ok = make_job(job_id=1, nodes=4, mem=16 * GiB)
        assert sched.fits_machine(local_ok, tiny_cluster)
        needs_pool = make_job(job_id=2, nodes=1, mem=17 * GiB)
        assert not sched.fits_machine(needs_pool, tiny_cluster)

    def test_est_duration_policies(self, pooled_cluster):
        from repro.memdis import LinearPenalty

        job = make_job(job_id=1, nodes=1, mem=32 * GiB, walltime=1000.0)
        strict = Scheduler(penalty=LinearPenalty(0.5), kill_policy=KillPolicy.STRICT)
        aware = Scheduler(penalty=LinearPenalty(0.5),
                          kill_policy=KillPolicy.DILATION_AWARE)
        assert strict.est_duration(job, pooled_cluster) == 1000.0
        # remote fraction = 16/32 = 0.5 -> dilation 0.25 at zero pressure
        assert aware.est_duration(job, pooled_cluster) == pytest.approx(1250.0)

    def test_pool_pressure(self, pooled_cluster):
        # Infinite bandwidth everywhere -> zero pressure.
        assert pool_pressure(pooled_cluster) == 0.0
        spec = ClusterSpec(
            num_nodes=4, nodes_per_rack=4,
            pool=PoolSpec(global_pool=100, global_bandwidth=50.0),
        )
        cluster = Cluster(spec)
        cluster.global_pool.allocate(1, 25)
        assert pool_pressure(cluster) == pytest.approx(0.5)
        assert pool_pressure(cluster, {"global": 25}) == pytest.approx(1.0)

    def test_try_start_now_respects_pool(self):
        spec = ClusterSpec(
            num_nodes=2, nodes_per_rack=2,
            node=NodeSpec(local_mem=16 * GiB),
            pool=PoolSpec(global_pool=4 * GiB),
        )
        cluster = Cluster(spec)
        sched = Scheduler()
        from repro.sched.base import SchedulerContext

        ctx = SchedulerContext(
            cluster=cluster, now=0.0, queue=[], running=[],
            start_job=lambda d: None,
        )
        fits = make_job(job_id=1, nodes=1, mem=18 * GiB)  # 2 GiB remote
        decision = sched.try_start_now(ctx, fits)
        assert decision is not None
        assert decision.plan == {"global": 2 * GiB}
        assert decision.split.local == 16 * GiB
        too_big = make_job(job_id=2, nodes=2, mem=19 * GiB)  # 6 GiB remote
        assert sched.try_start_now(ctx, too_big) is None

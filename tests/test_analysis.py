"""Tests for the analysis harness, config round-trips, and the CLI."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    ExperimentArm,
    bootstrap_ci,
    compare_table,
    crossover_point,
    mean_ci,
    relative_change,
    run_arms,
    run_config,
    run_replications,
)
from repro.cli import main as cli_main
from repro.cluster import ClusterSpec
from repro.config import ExperimentConfig
from repro.errors import ConfigurationError
from repro.sched import Scheduler, build_scheduler
from repro.memdis import NoPenalty
from repro.units import GiB
from repro.workload import JobState
from repro.workload.reference import generate_reference_jobs

from .conftest import make_job


def small_jobs(n=30):
    return [
        make_job(job_id=i + 1, submit=float(i * 30), nodes=1 + i % 2,
                 runtime=120.0, walltime=240.0, mem=(4 + i % 8) * GiB)
        for i in range(n)
    ]


def small_spec(**kwargs):
    defaults = dict(num_nodes=4, nodes_per_rack=4)
    defaults.update(kwargs)
    return ClusterSpec.from_dict(
        {**defaults, "node": {"local_mem": 16 * GiB},
         "pool": {"global_pool": 32 * GiB}}
    )


class TestRunConfig:
    def test_basic_run(self):
        result, summary = run_config(
            small_spec(), small_jobs(), label="arm-1",
            penalty={"kind": "linear", "beta": 0.3},
        )
        assert summary.label == "arm-1"
        assert summary.jobs_completed == 30
        assert all(job.state is JobState.COMPLETED for job in result.jobs)

    def test_jobs_not_mutated(self):
        jobs = small_jobs()
        run_config(small_spec(), jobs, penalty="none")
        assert all(job.state is JobState.PENDING for job in jobs)

    def test_scheduler_or_kwargs_not_both(self):
        with pytest.raises(ValueError):
            run_config(small_spec(), small_jobs(),
                       scheduler=Scheduler(), queue="sjf")

    def test_explicit_scheduler(self):
        _, summary = run_config(
            small_spec(), small_jobs(),
            scheduler=Scheduler(penalty=NoPenalty()),
        )
        assert summary.jobs_completed == 30


class TestRunArms:
    def test_arms_share_trace_fairly(self):
        jobs = small_jobs()
        arms = [
            ExperimentArm("easy", small_spec(),
                          lambda: build_scheduler(backfill="easy", penalty="none")),
            ExperimentArm("none", small_spec(),
                          lambda: build_scheduler(backfill="none", penalty="none")),
        ]
        summaries = run_arms(arms, jobs, class_local_mem=16 * GiB)
        assert [s.label for s in summaries] == ["easy", "none"]
        assert all(s.jobs_total == 30 for s in summaries)
        # Backfill can only help mean wait on the same trace.
        assert summaries[0].wait["mean"] <= summaries[1].wait["mean"] + 1e-6


class TestReplications:
    def test_replication_seeds_differ_but_reproduce(self):
        def make_jobs(streams):
            return generate_reference_jobs(
                "W-COMP", seed=streams.seed, num_jobs=40, cluster_nodes=4,
                max_mem_per_node=16 * GiB, target_load=0.7,
            )

        def run_one(jobs):
            _, summary = run_config(small_spec(), jobs, penalty="none")
            return summary

        a = run_replications(make_jobs, run_one, seeds=[1, 2, 3])
        b = run_replications(make_jobs, run_one, seeds=[1, 2, 3])
        waits_a = [s.wait["mean"] for s in a]
        waits_b = [s.wait["mean"] for s in b]
        assert waits_a == waits_b  # reproducible
        assert len(set(waits_a)) > 1  # seeds actually vary


class TestStats:
    def test_mean_ci_basics(self):
        mean, half = mean_ci([10.0, 12.0, 8.0, 10.0])
        assert mean == 10.0
        assert half > 0
        assert mean_ci([5.0]) == (5.0, 0.0)
        assert mean_ci([]) == (0.0, 0.0)

    def test_mean_ci_covers_true_mean(self):
        import numpy as np

        rng = np.random.default_rng(0)
        hits = 0
        for _ in range(100):
            sample = rng.normal(50.0, 10.0, size=10)
            mean, half = mean_ci(sample)
            if mean - half <= 50.0 <= mean + half:
                hits += 1
        assert hits >= 85  # ~95% nominal coverage

    def test_bootstrap_ci(self):
        mean, lo, hi = bootstrap_ci([1.0, 2.0, 3.0, 4.0, 5.0], seed=1)
        assert lo <= mean <= hi
        assert bootstrap_ci([]) == (0.0, 0.0, 0.0)


class TestCompare:
    def test_relative_change(self):
        assert relative_change(100.0, 50.0) == -0.5
        assert relative_change(0.0, 50.0) == 0.0

    def test_crossover_exact_point(self):
        x = [0.0, 1.0, 2.0]
        a = [1.0, 2.0, 3.0]
        b = [2.0, 2.0, 2.0]
        assert crossover_point(x, a, b) == 1.0

    def test_crossover_interpolated(self):
        x = [0.0, 1.0]
        a = [0.0, 2.0]
        b = [1.0, 1.0]
        assert crossover_point(x, a, b) == pytest.approx(0.5)

    def test_crossover_none_when_a_wins(self):
        assert crossover_point([0, 1], [1, 1], [5, 5]) is None

    def test_crossover_at_start(self):
        assert crossover_point([0, 1], [5, 5], [1, 1]) == 0.0

    def test_crossover_length_mismatch(self):
        with pytest.raises(ValueError):
            crossover_point([0], [1, 2], [1, 2])

    def test_compare_table_with_baseline(self):
        jobs = small_jobs()
        summaries = run_arms(
            [
                ExperimentArm("base", small_spec(),
                              lambda: build_scheduler(penalty="none")),
                ExperimentArm("alt", small_spec(),
                              lambda: build_scheduler(queue="sjf", penalty="none")),
            ],
            jobs,
        )
        table = compare_table(summaries, baseline_label="base")
        assert "base" in table and "alt" in table
        assert "wait_mean_vs_base" in table

    def test_compare_table_missing_baseline(self):
        jobs = small_jobs(5)
        summaries = run_arms(
            [ExperimentArm("only", small_spec(),
                           lambda: build_scheduler(penalty="none"))],
            jobs,
        )
        with pytest.raises(ValueError):
            compare_table(summaries, baseline_label="nope")


class TestExperimentConfig:
    def config_dict(self):
        return {
            "name": "test-exp",
            "cluster": {
                "num_nodes": 8,
                "nodes_per_rack": 4,
                "node": {"local_mem": "16GiB"},
                "pool": {"global_pool": "64GiB"},
            },
            "workload": {"reference": "W-COMP", "num_jobs": 50,
                         "load": 0.7, "seed": 3,
                         "max_mem_per_node": 32 * GiB},
            "scheduler": {"queue": "fcfs", "backfill": "easy",
                          "penalty": {"kind": "linear", "beta": 0.2}},
            "sample_interval": 300,
        }

    def test_round_trip(self):
        config = ExperimentConfig.from_dict(self.config_dict())
        again = ExperimentConfig.from_json(config.to_json())
        assert again.name == "test-exp"
        assert again.cluster == config.cluster
        assert again.sample_interval == 300

    def test_builds_everything(self):
        config = ExperimentConfig.from_dict(self.config_dict())
        cluster = config.build_cluster()
        scheduler = config.build_scheduler()
        jobs = config.build_jobs()
        assert cluster.num_nodes == 8
        assert scheduler.describe()["backfill"] == "easy"
        assert len(jobs) == 50
        assert max(j.nodes for j in jobs) <= 8

    def test_missing_cluster_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig.from_dict({"name": "x"})

    def test_bad_json_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig.from_json("{not json")

    def test_swf_workload(self, tmp_path):
        from repro.workload import write_swf

        trace = tmp_path / "t.swf"
        write_swf(small_jobs(10), trace)
        data = self.config_dict()
        data["workload"] = {"swf": str(trace), "num_jobs": 5}
        config = ExperimentConfig.from_dict(data)
        jobs = config.build_jobs()
        assert len(jobs) == 5


class TestCLI:
    def test_demo_runs(self, capsys):
        assert cli_main(["demo", "--jobs", "60", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "FAT-512" in out
        assert "stranded" in out

    def test_workloads_lists_mixes(self, capsys):
        assert cli_main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("W-COMP", "W-MIX", "W-DATA"):
            assert name in out

    def test_run_with_config(self, tmp_path, capsys):
        config = {
            "name": "cli-test",
            "cluster": {"num_nodes": 4, "nodes_per_rack": 4,
                        "node": {"local_mem": "16GiB"},
                        "pool": {"global_pool": "32GiB"}},
            "workload": {"reference": "W-COMP", "num_jobs": 30,
                         "load": 0.6, "seed": 1,
                         "max_mem_per_node": 32 * GiB},
            "scheduler": {"penalty": {"kind": "linear", "beta": 0.2}},
        }
        path = tmp_path / "cfg.json"
        path.write_text(json.dumps(config))
        csv_path = tmp_path / "jobs.csv"
        assert cli_main(["run", "--config", str(path),
                         "--csv", str(csv_path)]) == 0
        out = capsys.readouterr().out
        assert "cli-test" in out
        assert csv_path.exists()
        assert "job_id" in csv_path.read_text()

    def test_run_bad_config_errors(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        assert cli_main(["run", "--config", str(path)]) == 1
        assert "error" in capsys.readouterr().err

"""Release folding: incremental ``apply_release`` == fresh rebuild.

Three layers:

* unit — on randomized clusters, completing running jobs one by one
  (in arbitrary order, interleaved with ``apply_start`` folds) keeps
  every profile query bit-identical to a from-scratch rebuild *and*
  to the brute-force oracle (``_oracles.py``);
* refusal — clamped (overrun) profiles and unknown entries must leave
  the profile untouched and report failure, because a wrong fold
  would silently corrupt every later pass;
* engine differential — entire simulations with the release-
  notification hook disabled (forcing the pre-folding rebuild path)
  produce schedules identical to the folding fast path, for both EASY
  and conservative backfill, across kill policies.
"""

from __future__ import annotations

import random

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec, PoolSpec
from repro.engine.simulation import SchedulerSimulation
from repro.sched import AvailabilityProfile
from repro.sched.base import Scheduler, SchedulerContext, build_scheduler
from repro.units import GiB, HOUR
from repro.workload import Job, JobState

from ._oracles import OracleProfile


def _duration_of(job: Job) -> float:
    return job.walltime * (1.0 + job.dilation)


def _cluster(rng: random.Random) -> Cluster:
    kind = rng.choice(("global", "rack", "hybrid", "none"))
    pool = PoolSpec()
    if kind == "global":
        pool = PoolSpec(global_pool=96 * GiB)
    elif kind == "rack":
        pool = PoolSpec(rack_pool=48 * GiB)
    elif kind == "hybrid":
        pool = PoolSpec(rack_pool=32 * GiB, global_pool=64 * GiB)
    return Cluster(ClusterSpec(
        name=f"fold-{kind}", num_nodes=12, nodes_per_rack=4,
        node=NodeSpec(cores=8, local_mem=16 * GiB), pool=pool,
    ))


def _start_running_job(rng, cluster, job_id, now):
    free = list(cluster.sorted_free_ids())
    if not free:
        return None
    take = rng.randint(1, min(3, len(free)))
    node_ids = free[:take]
    walltime = rng.uniform(600.0, 4 * HOUR)
    job = Job(job_id=job_id, submit_time=0.0, nodes=take,
              walltime=walltime, runtime=walltime * rng.uniform(0.3, 0.9),
              mem_per_node=rng.choice((8, 16, 24)) * GiB)
    grants = {}
    pools = cluster.all_pools()
    if pools and rng.random() < 0.6:
        pool = rng.choice(pools)
        amount = min(pool.free, rng.choice((1, 2, 4)) * GiB)
        if amount > 0:
            grants[pool.pool_id] = amount
    cluster.allocate_nodes(job.job_id, node_ids, min(job.mem_per_node, 16 * GiB))
    if grants:
        cluster.allocate_pool(job.job_id, grants)
    job.state = JobState.RUNNING
    job.start_time = now - rng.uniform(0.0, walltime * 0.4)
    job.assigned_nodes = list(node_ids)
    job.pool_grants = grants
    job.dilation = rng.choice((0.0, 0.1, 0.25))
    return job


def _probe_times(rng, profile, now):
    times = list(profile.breakpoints())
    probes = list(times)
    probes += [t + 1e-10 for t in times[:4]]
    probes += [t - 1e-10 for t in times[:4] if t > 0]
    probes += [now + rng.uniform(0.0, 5 * HOUR) for _ in range(6)]
    return probes


def _assert_equals_rebuild(rng, cluster, running, now, profile):
    fresh = AvailabilityProfile(cluster, running, now, _duration_of)
    ref = OracleProfile(cluster, running, now, _duration_of)
    assert profile.breakpoints() == fresh.breakpoints() == ref.breakpoints()
    for t in _probe_times(rng, ref, now):
        assert profile.free_at(t) == fresh.free_at(t) == ref.free_at(t)
        dur = rng.uniform(60.0, 2 * HOUR)
        assert (
            profile.window_free(t, dur)
            == fresh.window_free(t, dur)
            == ref.window_free(t, dur)
        )
    _assert_cursor_equals_rebuild(profile, fresh)


def _materialize_random_prefix(rng, profile):
    """Force a live cursor with a random materialized depth, so folds
    exercise the in-place patch over full, partial, and empty
    prefixes alike."""
    cursor = profile.sweep_cursor()
    depth = rng.randint(0, len(cursor._times))
    if depth:
        cursor._materialize_to(depth - 1)


def _assert_cursor_equals_rebuild(profile, fresh):
    """The fold-patched cursor must equal a fresh profile's cursor on
    every materialized per-breakpoint state, not just on query results:
    grid times, free sets, counts, and release-timeline indices."""
    cursor = profile._cursor
    assert cursor is not None, "fold dropped the live sweep cursor"
    assert cursor is profile.sweep_cursor()
    ref = fresh.sweep_cursor()
    assert list(cursor._times) == list(ref._times)
    last = len(ref._times) - 1
    cursor._materialize_to(last)
    ref._materialize_to(last)
    assert list(cursor._free) == list(ref._free)
    assert list(cursor._counts) == list(ref._counts)
    assert list(cursor._k) == list(ref._k)


class TestApplyReleaseUnit:
    @pytest.mark.parametrize("seed", range(30))
    def test_fold_every_completion_equals_rebuild(self, seed):
        """Complete running jobs in random order; after every fold the
        profile must equal a from-scratch rebuild (and the reference)
        at the same instant."""
        rng = random.Random(50_000 + seed)
        cluster = _cluster(rng)
        now = rng.uniform(0.0, 500.0)
        running = []
        for i in range(rng.randint(2, 5)):
            job = _start_running_job(rng, cluster, 500 + i, now)
            if job is not None:
                running.append(job)
        if not running:
            pytest.skip("random state started nothing")
        profile = AvailabilityProfile(cluster, running, now, _duration_of)

        while running:
            _materialize_random_prefix(rng, profile)
            victim = running.pop(rng.randrange(len(running)))
            cluster.release_nodes(victim.job_id, victim.assigned_nodes)
            cluster.release_pool(victim.job_id)
            est_end = victim.start_time + _duration_of(victim)
            assert profile.apply_release(
                victim.assigned_nodes, victim.pool_grants, est_end
            )
            _assert_equals_rebuild(rng, cluster, running, now, profile)

    @pytest.mark.parametrize("seed", range(15))
    def test_folds_interleaved_with_starts(self, seed):
        """apply_start and apply_release interleave (a busy instant):
        the profile must track the live cluster exactly throughout."""
        rng = random.Random(60_000 + seed)
        cluster = _cluster(rng)
        now = rng.uniform(0.0, 300.0)
        running = []
        next_id = 700
        for i in range(3):
            job = _start_running_job(rng, cluster, next_id, now)
            next_id += 1
            if job is not None:
                running.append(job)
        profile = AvailabilityProfile(cluster, running, now, _duration_of)

        for _ in range(6):
            _materialize_random_prefix(rng, profile)
            if running and rng.random() < 0.5:
                victim = running.pop(rng.randrange(len(running)))
                cluster.release_nodes(victim.job_id, victim.assigned_nodes)
                cluster.release_pool(victim.job_id)
                est_end = victim.start_time + _duration_of(victim)
                assert profile.apply_release(
                    victim.assigned_nodes, victim.pool_grants, est_end
                )
            else:
                job = _start_running_job(rng, cluster, next_id, now)
                next_id += 1
                if job is None:
                    continue
                job.start_time = now  # a mid-pass start happens *now*
                running.append(job)
                profile.apply_start(
                    job.assigned_nodes, job.pool_grants,
                    job.start_time + _duration_of(job),
                )
            _assert_equals_rebuild(rng, cluster, running, now, profile)

    def test_refuses_clamped_profile(self):
        """A clamped (overrun) release embeds the build instant; any
        fold on such a profile must refuse and leave it untouched."""
        cluster = Cluster(ClusterSpec(
            num_nodes=4, nodes_per_rack=2,
            node=NodeSpec(local_mem=16 * GiB), pool=PoolSpec(),
        ))
        job = Job(job_id=1, submit_time=0.0, nodes=2, walltime=10.0,
                  runtime=5.0, mem_per_node=GiB)
        job.state = JobState.RUNNING
        job.start_time = -50.0  # overran long ago -> clamped release
        job.assigned_nodes = [0, 1]
        job.pool_grants = {}
        profile = AvailabilityProfile(cluster, [job], 0.0, _duration_of)
        before = profile.breakpoints()
        assert not profile.apply_release([0, 1], {}, -40.0)
        assert not profile.apply_release([0, 1], {}, 1.0)
        assert profile.breakpoints() == before

    def test_refuses_unknown_entry(self):
        cluster = Cluster(ClusterSpec(
            num_nodes=4, nodes_per_rack=2,
            node=NodeSpec(local_mem=16 * GiB), pool=PoolSpec(),
        ))
        job = Job(job_id=1, submit_time=0.0, nodes=2, walltime=100.0,
                  runtime=50.0, mem_per_node=GiB)
        job.state = JobState.RUNNING
        job.start_time = 0.0
        job.assigned_nodes = [0, 1]
        job.pool_grants = {}
        profile = AvailabilityProfile(cluster, [job], 0.0, _duration_of)
        mutations = profile.mutation_count
        # Wrong time, wrong nodes, wrong grants: all refused untouched.
        assert not profile.apply_release([0, 1], {}, 99.0)
        assert not profile.apply_release([0, 2], {}, 100.0)
        assert not profile.apply_release([0, 1], {"global": GiB}, 100.0)
        assert profile.mutation_count == mutations
        assert profile.breakpoints() == [0.0, 100.0]
        # The real entry folds fine afterwards.
        assert profile.apply_release([0, 1], {}, 100.0)
        assert profile.breakpoints() == [0.0]


# ----------------------------------------------------------------------
# engine differential: folding on vs off
# ----------------------------------------------------------------------


def _random_jobs(rng, num_jobs=40, overrun=False):
    jobs = []
    t = 0.0
    high = 1.6 if overrun else 1.0
    for job_id in range(1, num_jobs + 1):
        t += rng.expovariate(1.0 / 350.0)
        walltime = rng.uniform(300.0, 5 * HOUR)
        jobs.append(Job(
            job_id=job_id, submit_time=round(t, 3),
            nodes=rng.randint(1, 10), walltime=walltime,
            runtime=walltime * rng.uniform(0.2, high),
            mem_per_node=rng.choice((4, 8, 16, 24)) * GiB,
        ))
    return jobs


def _spec():
    return ClusterSpec(
        name="fold-e2e", num_nodes=16, nodes_per_rack=8,
        node=NodeSpec(cores=8, local_mem=16 * GiB),
        pool=PoolSpec(global_pool=128 * GiB),
    )


def _schedule_record(result):
    return [
        (job.job_id, job.state.value, job.start_time, job.end_time,
         tuple(job.assigned_nodes), tuple(sorted(job.pool_grants.items())),
         job.dilation)
        for job in sorted(result.jobs, key=lambda j: j.job_id)
    ]


class _DeafScheduler(Scheduler):
    """A scheduler that never hears about releases: every completion
    forces the pre-folding rebuild path."""

    def notify_release(self, cluster, job, now, version_before):
        return None


def _deaf(**kwargs) -> Scheduler:
    stock = build_scheduler(**kwargs)
    return _DeafScheduler(
        queue_policy=stock.queue_policy,
        backfill=type(stock.backfill)(**_backfill_kwargs(stock.backfill)),
        placement=stock.placement,
        split_policy=stock.split_policy,
        allocator=stock._allocator,
        penalty=stock.penalty,
        gate=stock.gate,
        kill_policy=stock.kill_policy,
    )


def _backfill_kwargs(backfill):
    if backfill.name == "easy":
        return {"depth": backfill.depth, "memory_aware": backfill.memory_aware}
    if backfill.name == "conservative":
        return {"depth": backfill.depth}
    return {}


class TestEngineFoldingDifferential:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("backfill", ["easy", "conservative"])
    def test_folding_is_pure_optimization(self, seed, backfill):
        rng = random.Random(70_000 + seed)
        jobs = _random_jobs(rng)
        kwargs = dict(backfill=backfill,
                      penalty={"kind": "linear", "beta": 0.3})
        fold = SchedulerSimulation(
            Cluster(_spec()), build_scheduler(**kwargs),
            [j.copy_request() for j in jobs],
        ).run()
        deaf = SchedulerSimulation(
            Cluster(_spec()), _deaf(**kwargs),
            [j.copy_request() for j in jobs],
        ).run()
        assert _schedule_record(fold) == _schedule_record(deaf)
        assert fold.promises == deaf.promises
        assert fold.cycles == deaf.cycles

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("backfill", ["easy", "conservative"])
    def test_folding_with_overruns(self, seed, backfill):
        """kill=none overruns clamp releases: folds must refuse and
        fall back, still matching the rebuild path end to end."""
        rng = random.Random(80_000 + seed)
        jobs = _random_jobs(rng, overrun=True)
        kwargs = dict(backfill=backfill, kill_policy="none",
                      penalty={"kind": "linear", "beta": 0.3})
        fold = SchedulerSimulation(
            Cluster(_spec()), build_scheduler(**kwargs),
            [j.copy_request() for j in jobs],
        ).run()
        deaf = SchedulerSimulation(
            Cluster(_spec()), _deaf(**kwargs),
            [j.copy_request() for j in jobs],
        ).run()
        assert _schedule_record(fold) == _schedule_record(deaf)
        assert fold.promises == deaf.promises


# ---------------------------------------------------------------------------
# The EASY shadow fold ledger: completion folds a release provably
# cannot affect must keep the cached shadow alive (no head rescan),
# and every door failure must drop it — with the surviving shadow
# always equal to what a fresh scan would answer.
# ---------------------------------------------------------------------------

def _shadow_cluster(pool: int = 64 * GiB) -> Cluster:
    return Cluster(ClusterSpec(
        name="shadow", num_nodes=8, nodes_per_rack=8,
        node=NodeSpec(cores=8, local_mem=16 * GiB),
        pool=PoolSpec(global_pool=pool),
    ))


def _shadow_running(cluster, job_id, node_ids, walltime, pool=0):
    job = Job(job_id=job_id, submit_time=0.0, nodes=len(node_ids),
              walltime=walltime, runtime=walltime, mem_per_node=8 * GiB)
    cluster.allocate_nodes(job_id, list(node_ids), 8 * GiB)
    grants = {}
    if pool:
        grants = {"global": pool}
        cluster.allocate_pool(job_id, grants)
    job.state = JobState.RUNNING
    job.start_time = 0.0
    job.assigned_nodes = list(node_ids)
    job.pool_grants = grants
    job.dilation = 0.0
    return job


def _shadow_head(nodes, mem=8 * GiB):
    return Job(job_id=500, submit_time=0.0, nodes=nodes, walltime=HOUR,
               runtime=HOUR, mem_per_node=mem)


def _shadow_ctx(cluster, queue, running, now):
    return SchedulerContext(cluster=cluster, now=now, queue=queue,
                            running=running, start_job=lambda d: None)


def _complete(sched, cluster, job, running, now):
    """Engine-faithful completion: resources released first, then the
    notification hook, with the pre-release version stamp."""
    version_before = cluster.version
    cluster.release_nodes(job.job_id, job.assigned_nodes)
    cluster.release_pool(job.job_id)
    running.remove(job)
    return sched.backfill.on_release(sched, cluster, job, now, version_before)


def _fresh_shadow(cluster, running, head, now):
    """What a from-scratch EASY pass would answer for the head."""
    sched = build_scheduler(backfill="easy")
    ctx = _shadow_ctx(cluster, [head], running, now)
    _profile, _split, _dur, shadow = sched.backfill._shadow_of(
        ctx, sched, head)
    return shadow


class TestShadowFoldLedger:
    def test_fold_below_demand_survives(self):
        """A completion freeing fewer nodes than the shadow scan's
        slack keeps the cached shadow alive across the fold."""
        cluster = _shadow_cluster()
        running = [
            _shadow_running(cluster, 1, (0, 1, 2, 3), 600.0),
            _shadow_running(cluster, 2, (4, 5), 1200.0),
        ]
        sched = build_scheduler(backfill="easy")
        head = _shadow_head(6)
        ctx = _shadow_ctx(cluster, [head], running, 0.0)
        *_, shadow = sched.backfill._shadow_of(ctx, sched, head)
        assert shadow == 600.0
        # Job 2's fold frees 2 nodes; rejected breakpoints peaked at
        # 2 achievable, and 2 + 2 < 6.
        assert _complete(sched, cluster, running[1], running, 10.0) == 1200.0
        stats = sched.backfill.shadow_stats
        assert stats["fold_survived"] == 1 and stats["fold_dropped"] == 0
        ctx2 = _shadow_ctx(cluster, [head], running, 10.0)
        *_, again = sched.backfill._shadow_of(ctx2, sched, head)
        assert again == 600.0
        assert stats["reused"] == 1 and stats["recompute"] == 1
        assert again == _fresh_shadow(cluster, running, head, 10.0)

    def test_fold_breaching_demand_drops(self):
        """A fold whose freed nodes could tip a rejected breakpoint
        over the head's demand voids the shadow; the recompute then
        matches a from-scratch pass."""
        cluster = _shadow_cluster()
        running = [
            _shadow_running(cluster, 1, (0, 1, 2), 500.0),
            _shadow_running(cluster, 2, (3, 4, 5), 900.0),
        ]
        sched = build_scheduler(backfill="easy")
        head = _shadow_head(6)
        ctx = _shadow_ctx(cluster, [head], running, 0.0)
        *_, shadow = sched.backfill._shadow_of(ctx, sched, head)
        assert shadow == 900.0
        # Job 1 frees 3 nodes against a rejected peak of 5: 5 + 3 >= 6.
        assert _complete(sched, cluster, running[0], running, 10.0) == 500.0
        stats = sched.backfill.shadow_stats
        assert stats["fold_dropped"] == 1
        assert sched.backfill._shadow_cache is None
        ctx2 = _shadow_ctx(cluster, [head], running, 10.0)
        *_, again = sched.backfill._shadow_of(ctx2, sched, head)
        assert stats["recompute"] == 2 and stats["reused"] == 0
        assert again == _fresh_shadow(cluster, running, head, 10.0)

    def test_coincident_fold_needs_surviving_breakpoint(self):
        """A fold at the shadow instant itself survives only while
        another release still breaks there — the accepted breakpoint
        must not vanish from the grid."""
        cluster = _shadow_cluster()
        running = [
            _shadow_running(cluster, 1, (0,), 600.0),
            _shadow_running(cluster, 2, (1, 2, 3), 600.0),
            _shadow_running(cluster, 3, (4, 5), 4 * HOUR),
        ]
        sched = build_scheduler(backfill="easy")
        head = _shadow_head(4)
        ctx = _shadow_ctx(cluster, [head], running, 0.0)
        *_, shadow = sched.backfill._shadow_of(ctx, sched, head)
        assert shadow == 600.0
        # Job 1 folds exactly at the shadow, but job 2 still releases
        # there: 2 + 1 < 4 and the breakpoint stands.
        assert _complete(sched, cluster, running[0], running, 10.0) == 600.0
        stats = sched.backfill.shadow_stats
        assert stats["fold_survived"] == 1
        ctx2 = _shadow_ctx(cluster, [head], running, 10.0)
        *_, again = sched.backfill._shadow_of(ctx2, sched, head)
        assert again == 600.0 == _fresh_shadow(cluster, running, head, 10.0)
        assert stats["reused"] == 1

    def test_pool_door_survives_node_only_folds(self):
        """A pool-rejecting shadow scan poisons the per-node bound;
        the pool door still proves node-only folds harmless, while a
        pool-carrying fold voids it."""
        cluster = _shadow_cluster(pool=16 * GiB)
        running = [
            _shadow_running(cluster, 1, (0, 1, 2, 3, 4), 600.0,
                            pool=16 * GiB),
            _shadow_running(cluster, 2, (5,), 1200.0),
        ]
        sched = build_scheduler(backfill="easy")
        # 24 GiB per node on 16 GiB nodes: 8 GiB remote each.  At the
        # anchor two nodes are free (count passes) but the pool is
        # exhausted — a pure pool-capacity rejection.
        head = _shadow_head(2, mem=24 * GiB)
        ctx = _shadow_ctx(cluster, [head], running, 0.0)
        *_, shadow = sched.backfill._shadow_of(ctx, sched, head)
        assert shadow == 600.0
        plan = sched.backfill._shadow_cache
        assert plan.m_bound >= plan.need  # sentinel-poisoned
        assert plan.p_bound is not None
        # Node-only fold: zero pool MiB returns, count-only bound holds.
        assert _complete(sched, cluster, running[1], running, 10.0) == 1200.0
        stats = sched.backfill.shadow_stats
        assert stats["fold_survived"] == 1
        ctx2 = _shadow_ctx(cluster, [head], running, 10.0)
        *_, again = sched.backfill._shadow_of(ctx2, sched, head)
        assert again == 600.0 == _fresh_shadow(cluster, running, head, 10.0)
        assert stats["reused"] == 1
        # The pool-carrying fold raises pool availability below the
        # shadow: the premise is gone, the cache must drop.
        assert _complete(sched, cluster, running[0], running, 20.0) == 600.0
        assert stats["fold_dropped"] == 1
        assert sched.backfill._shadow_cache is None

    def test_shadow_none_survives_every_fold(self):
        """A head that cannot fit even the empty machine stays
        infeasible through any completion: folds never change machine
        composition."""
        cluster = _shadow_cluster()
        running = [
            _shadow_running(cluster, 1, (0, 1, 2, 3), 600.0),
            _shadow_running(cluster, 2, (4, 5), 1200.0),
        ]
        sched = build_scheduler(backfill="easy")
        head = _shadow_head(20)
        ctx = _shadow_ctx(cluster, [head], running, 0.0)
        *_, shadow = sched.backfill._shadow_of(ctx, sched, head)
        assert shadow is None
        _complete(sched, cluster, running[0], running, 10.0)
        _complete(sched, cluster, running[0], running, 20.0)
        stats = sched.backfill.shadow_stats
        assert stats["fold_survived"] == 2
        ctx2 = _shadow_ctx(cluster, [head], running, 20.0)
        *_, again = sched.backfill._shadow_of(ctx2, sched, head)
        assert again is None
        assert stats["reused"] == 1 and stats["recompute"] == 1

    @pytest.mark.parametrize("seed", range(4))
    def test_ledger_fires_end_to_end(self, seed):
        """In real simulations (already decision-differentialed above)
        the survival path must actually carry shadows across folds."""
        rng = random.Random(90_000 + seed)
        jobs = _random_jobs(rng)
        sched = build_scheduler(backfill="easy",
                                penalty={"kind": "linear", "beta": 0.3})
        result = SchedulerSimulation(
            Cluster(_spec()), sched, [j.copy_request() for j in jobs],
        ).run()
        stats = result.strategy_stats["shadow"]
        assert stats == sched.backfill.shadow_stats
        assert stats["recompute"] > 0
        assert stats["fold_survived"] + stats["fold_dropped"] > 0

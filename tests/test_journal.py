"""State-store (write-ahead journal + snapshot) unit tests.

The durability properties under test are exactly the crash windows
the service relies on: a torn final line is a never-acknowledged batch
(dropped silently), mid-file damage is corruption (refused loudly),
and a snapshot atomically supersedes the journal prefix it covers.
"""

from __future__ import annotations

import json

import pytest

from repro.service.journal import (
    JournalError,
    StateStore,
    config_fingerprint,
)

FP = config_fingerprint('{"demo": 1}')


def store_at(tmp_path, name="state"):
    return StateStore(tmp_path / name, FP)


class TestAppendReplay:
    def test_round_trip_in_order(self, tmp_path):
        store = store_at(tmp_path)
        for value in range(5):
            store.append({"value": value})
        store.close()
        reopened = store_at(tmp_path)
        records = reopened.replay(after_seq=0)
        assert [seq for seq, _ in records] == [1, 2, 3, 4, 5]
        assert [body["value"] for _, body in records] == [0, 1, 2, 3, 4]
        assert reopened.next_seq == 6

    def test_replay_after_seq_filters(self, tmp_path):
        store = store_at(tmp_path)
        for value in range(5):
            store.append({"value": value})
        assert [seq for seq, _ in store.replay(after_seq=3)] == [4, 5]

    def test_fresh_store_is_empty(self, tmp_path):
        store = store_at(tmp_path)
        assert store.replay(after_seq=0) == []
        assert store.latest_snapshot() is None
        assert store.next_seq == 1


class TestCrashWindows:
    def test_torn_tail_is_dropped(self, tmp_path):
        store = store_at(tmp_path)
        store.append({"value": 1})
        store.append({"value": 2})
        store.close()
        segment = next(iter(sorted((tmp_path / "state").glob("journal-*"))))
        text = segment.read_text()
        lines = text.splitlines()
        segment.write_text("\n".join(lines[:-1] + [lines[-1][: len(lines[-1]) // 2]]))
        reopened = store_at(tmp_path)
        assert [seq for seq, _ in reopened.replay(0)] == [1]
        # The dropped record's sequence number is reused: the batch was
        # never acknowledged, so the retry takes its place.
        assert reopened.next_seq == 2

    def test_crc_damage_on_tail_is_dropped(self, tmp_path):
        store = store_at(tmp_path)
        store.append({"value": 1})
        store.append({"value": 2})
        store.close()
        segment = next(iter(sorted((tmp_path / "state").glob("journal-*"))))
        lines = segment.read_text().splitlines()
        doc = json.loads(lines[-1])
        doc["rec"]["value"] = 99  # body no longer matches its crc
        lines[-1] = json.dumps(doc)
        segment.write_text("\n".join(lines) + "\n")
        assert [seq for seq, _ in store_at(tmp_path).replay(0)] == [1]

    def test_mid_file_damage_is_corruption(self, tmp_path):
        store = store_at(tmp_path)
        for value in range(3):
            store.append({"value": value})
        store.close()
        segment = next(iter(sorted((tmp_path / "state").glob("journal-*"))))
        lines = segment.read_text().splitlines()
        lines[1] = "garbage"
        segment.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="corrupt"):
            store_at(tmp_path)

    def test_restart_never_appends_to_a_torn_segment(self, tmp_path):
        """Post-crash appends go to a fresh segment, so the tear stays
        a tail forever instead of becoming mid-file corruption."""
        store = store_at(tmp_path)
        store.append({"value": 1})
        store.close()
        segment = next(iter(sorted((tmp_path / "state").glob("journal-*"))))
        segment.write_text(segment.read_text() + '{"torn')
        second = store_at(tmp_path)
        second.append({"value": 2})
        second.close()
        third = store_at(tmp_path)
        assert [body["value"] for _, body in third.replay(0)] == [1, 2]

    def test_gap_is_refused(self, tmp_path):
        store = store_at(tmp_path)
        for value in range(3):
            store.append({"value": value})
        store.close()
        segment = next(iter(sorted((tmp_path / "state").glob("journal-*"))))
        lines = segment.read_text().splitlines()
        segment.write_text("\n".join([lines[0], lines[2]]) + "\n")
        with pytest.raises(JournalError, match="gap"):
            store_at(tmp_path).replay(0)


class TestSnapshots:
    def test_snapshot_covers_and_prunes(self, tmp_path):
        store = store_at(tmp_path)
        for value in range(4):
            store.append({"value": value})
        store.write_snapshot({"engine": "state-at-4"})
        covered, doc = store.latest_snapshot()
        assert covered == 4
        assert doc == {"engine": "state-at-4"}
        for value in range(4, 6):
            store.append({"value": value})
        assert [seq for seq, _ in store.replay(covered)] == [5, 6]
        store.write_snapshot({"engine": "state-at-6"})
        store.append({"value": 6})
        store.write_snapshot({"engine": "state-at-7"})
        store.close()
        root = tmp_path / "state"
        # The newest two snapshot generations are retained.
        assert [p.name for p in sorted(root.glob("snapshot-*"))] == [
            "snapshot-000006.json",
            "snapshot-000007.json",
        ]
        # Segments before the older retained snapshot are pruned.
        reopened = store_at(tmp_path)
        assert reopened.replay(7) == []
        assert reopened.next_seq == 8

    def test_unreadable_snapshot_falls_back_to_older(self, tmp_path):
        store = store_at(tmp_path)
        store.append({"value": 1})
        store.write_snapshot({"gen": 1})
        store.append({"value": 2})
        store.write_snapshot({"gen": 2})
        newest = sorted((tmp_path / "state").glob("snapshot-*"))[-1]
        newest.write_text("not json")
        covered, doc = store.latest_snapshot()
        assert (covered, doc) == (1, {"gen": 1})
        # The journal suffix from the older snapshot must still exist.
        assert [seq for seq, _ in store.replay(covered)] == [2]

    def test_snapshot_write_is_atomic(self, tmp_path):
        store = store_at(tmp_path)
        store.append({"value": 1})
        store.write_snapshot({"gen": 1})
        assert not list((tmp_path / "state").glob("*.tmp"))


class TestFingerprint:
    def test_mismatched_fingerprint_refused(self, tmp_path):
        StateStore(tmp_path / "state", FP).close()
        with pytest.raises(JournalError, match="different configuration"):
            StateStore(tmp_path / "state", config_fingerprint("other"))

    def test_fingerprint_is_stable(self):
        assert config_fingerprint("abc") == config_fingerprint("abc")
        assert config_fingerprint("abc") != config_fingerprint("abd")

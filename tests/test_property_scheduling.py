"""Property-based whole-system tests.

Hypothesis generates random (cluster, workload, policy stack, failure
trace) scenarios; every resulting schedule must satisfy the auditor's
seven invariants.  This is the test that explores the interaction
space no hand-written scenario covers — it found its keep during
development and stays as the regression net.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import Cluster, ClusterSpec, NodeSpec, PoolSpec
from repro.engine import FailureEvent, SchedulerSimulation, audit_result
from repro.sched import build_scheduler
from repro.units import GiB
from repro.workload import Job, JobState

# ---------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------

cluster_specs = st.builds(
    lambda nodes, per_rack, local, pool_kind, pool_size: ClusterSpec(
        name="prop",
        num_nodes=nodes,
        nodes_per_rack=per_rack,
        node=NodeSpec(cores=8, local_mem=local * GiB),
        pool=PoolSpec(
            rack_pool=pool_size * GiB if pool_kind in ("rack", "both") else 0,
            global_pool=pool_size * GiB if pool_kind in ("global", "both") else 0,
        ),
    ),
    nodes=st.integers(2, 10),
    per_rack=st.integers(2, 4),
    local=st.integers(4, 32),
    pool_kind=st.sampled_from(["none", "global", "rack", "both"]),
    pool_size=st.integers(4, 64),
)


def jobs_strategy(max_nodes: int):
    def make_job_tuple(i, submit, nodes, runtime, inflate, mem_gib, used_frac):
        walltime = runtime * inflate
        mem = max(1, int(mem_gib * GiB))
        return Job(
            job_id=i,
            submit_time=float(submit),
            nodes=min(nodes, max_nodes),
            walltime=float(walltime),
            runtime=float(runtime),
            mem_per_node=mem,
            mem_used_per_node=max(1, int(mem * used_frac)),
        )

    return st.lists(
        st.tuples(
            st.floats(0, 5000, allow_nan=False, allow_infinity=False),
            st.integers(1, 6),
            st.floats(10, 5000, allow_nan=False),
            st.floats(1.0, 3.0, allow_nan=False),
            st.floats(0.1, 48.0, allow_nan=False),
            st.floats(0.1, 1.0, allow_nan=False),
        ),
        min_size=1,
        max_size=20,
    ).map(
        lambda rows: [
            make_job_tuple(i + 1, *row) for i, row in enumerate(rows)
        ]
    )


scheduler_kwargs = st.fixed_dictionaries(
    {
        "queue": st.sampled_from(["fcfs", "sjf", "ljf", "wfp", "unicef"]),
        "backfill": st.sampled_from(["none", "easy", "conservative"]),
        "placement": st.sampled_from(
            ["first_fit", "rack_pack", "min_remote", "spread"]
        ),
        "penalty": st.sampled_from(
            [
                {"kind": "none"},
                {"kind": "linear", "beta": 0.4},
                {"kind": "saturating", "beta": 0.6, "gamma": 1.0},
            ]
        ),
        "kill_policy": st.sampled_from(["strict", "dilation_aware", "none"]),
        "gate": st.sampled_from(["always", "pressure", "adaptive"]),
    }
)


# ---------------------------------------------------------------------
# properties
# ---------------------------------------------------------------------

@given(spec=cluster_specs, data=st.data(), kwargs=scheduler_kwargs)
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_random_scenarios_audit_clean(spec, data, kwargs):
    jobs = data.draw(jobs_strategy(spec.num_nodes))
    cluster = Cluster(spec)
    scheduler = build_scheduler(**kwargs)
    result = SchedulerSimulation(cluster, scheduler, jobs).run()
    audit_result(result)
    # Global liveness: every job reached a terminal state.
    assert all(job.state.terminal for job in result.jobs)
    # The machine is fully drained at the end.
    assert cluster.free_node_count == cluster.num_nodes
    assert cluster.total_pool_used == 0
    assert result.ledger.outstanding_remote() == 0


def test_min_remote_admission_liveness_regression():
    """Regression (hypothesis-found): with min_remote placement and
    hybrid pools, ``fits_machine`` used to order racks by *live* pool
    free at submission — a transient state could admit a 5-node
    23-GiB/node job whose selection on the fully drained machine
    spanned racks infeasibly, leaving it PENDING forever and the
    simulation stuck.  The empty-machine check now orders by capacity,
    so the verdict matches drained-machine startability.
    """
    spec = ClusterSpec(
        name="prop", num_nodes=10, nodes_per_rack=3,
        node=NodeSpec(cores=8, local_mem=13312),
        pool=PoolSpec(rack_pool=15360, global_pool=15360),
    )
    rows = (
        [(0.0, 1, 10.0, 1.0, 1.0, 1.0)] * 7
        + [(0.0, 1, 10.0, 1.0, 14.0, 1.0)] * 2
        + [(0.0, 2, 10.0, 1.0, 1.0, 1.0)]
        + [(0.0, 1, 10.0, 1.0, 1.0, 1.0)] * 2
        + [(0.0, 2, 10.0, 1.0, 1.0, 1.0)]
        + [(1.0, 5, 10.0, 1.0, 23.0, 1.0)]
    )
    jobs = []
    for i, (submit, nodes, runtime, inflate, mem_gib, used_frac) in enumerate(rows):
        mem = max(1, int(mem_gib * GiB))
        jobs.append(Job(
            job_id=i + 1, submit_time=float(submit), nodes=nodes,
            walltime=float(runtime * inflate), runtime=float(runtime),
            mem_per_node=mem, mem_used_per_node=max(1, int(mem * used_frac)),
        ))
    scheduler = build_scheduler(
        queue="fcfs", backfill="none", placement="min_remote",
        penalty={"kind": "none"}, kill_policy="strict", gate="always",
    )
    cluster = Cluster(spec)
    result = SchedulerSimulation(cluster, scheduler, jobs).run()
    audit_result(result)
    assert all(job.state.terminal for job in result.jobs)
    # The over-wide job is rejected up front, not stranded in the queue.
    assert result.job(14).state is JobState.REJECTED


@given(spec=cluster_specs, data=st.data())
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_random_scenarios_with_failures_audit_clean(spec, data):
    jobs = data.draw(jobs_strategy(spec.num_nodes))
    failures = data.draw(
        st.lists(
            st.tuples(
                st.floats(0, 8000, allow_nan=False),
                st.integers(0, spec.num_nodes - 1),
                st.floats(60, 4000, allow_nan=False),
            ),
            max_size=5,
        ).map(
            lambda rows: [FailureEvent(t, n, r) for t, n, r in rows]
        )
    )
    cluster = Cluster(spec)
    scheduler = build_scheduler(penalty={"kind": "linear", "beta": 0.3})
    result = SchedulerSimulation(
        cluster, scheduler, jobs, failures=failures
    ).run()
    audit_result(result)
    assert all(job.state.terminal for job in result.jobs)
    assert cluster.total_pool_used == 0


@given(spec=cluster_specs, data=st.data())
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_determinism_property(spec, data):
    """Identical inputs produce byte-identical schedules."""
    jobs = data.draw(jobs_strategy(spec.num_nodes))

    def one_run():
        fresh = [job.copy_request() for job in jobs]
        scheduler = build_scheduler(penalty={"kind": "linear", "beta": 0.3})
        result = SchedulerSimulation(Cluster(spec), scheduler, fresh).run()
        return [
            (j.job_id, j.state.value, j.start_time, tuple(j.assigned_nodes),
             tuple(sorted(j.pool_grants.items())))
            for j in result.jobs
        ]

    assert one_run() == one_run()

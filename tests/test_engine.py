"""End-to-end engine tests: golden scenarios with hand-computed
schedules, kill policies, rejection, gates, promises, and audits."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec, PoolSpec
from repro.engine import SchedulerSimulation, audit_result
from repro.errors import AuditError, ConfigurationError, SimulationError
from repro.memdis import ContentionPenalty, LinearPenalty, NoPenalty
from repro.sched import (
    AdaptiveGate,
    ConservativeBackfill,
    EasyBackfill,
    NoBackfill,
    PressureGate,
    Scheduler,
)
from repro.sched.base import KillPolicy
from repro.units import GiB
from repro.workload import JobState

from .conftest import make_job


def four_node_cluster(local_mem=16 * GiB, global_pool=0):
    spec = ClusterSpec(
        name="four",
        num_nodes=4,
        nodes_per_rack=4,
        node=NodeSpec(cores=8, local_mem=local_mem),
        pool=PoolSpec(global_pool=global_pool),
    )
    return Cluster(spec)


def run_sim(cluster, scheduler, jobs, **kwargs):
    result = SchedulerSimulation(cluster, scheduler, jobs, **kwargs).run()
    audit_result(result)
    return result


class TestBasicDispatch:
    def test_single_job(self):
        cluster = four_node_cluster()
        job = make_job(job_id=1, submit=5.0, nodes=2, runtime=100.0,
                       walltime=200.0, mem=4 * GiB)
        result = run_sim(cluster, Scheduler(penalty=NoPenalty()), [job])
        assert job.state is JobState.COMPLETED
        assert job.start_time == 5.0
        assert job.end_time == 105.0
        assert job.assigned_nodes == [0, 1]
        assert job.dilation == 0.0

    def test_fcfs_sequential_on_full_machine(self):
        cluster = four_node_cluster()
        j1 = make_job(job_id=1, submit=0.0, nodes=4, runtime=100.0,
                      walltime=100.0, mem=1 * GiB)
        j2 = make_job(job_id=2, submit=10.0, nodes=4, runtime=50.0,
                      walltime=50.0, mem=1 * GiB)
        run_sim(cluster, Scheduler(penalty=NoPenalty()), [j1, j2])
        assert j1.start_time == 0.0
        assert j2.start_time == 100.0
        assert j2.end_time == 150.0

    def test_parallel_when_room(self):
        cluster = four_node_cluster()
        j1 = make_job(job_id=1, submit=0.0, nodes=2, runtime=100.0,
                      walltime=100.0, mem=1 * GiB)
        j2 = make_job(job_id=2, submit=1.0, nodes=2, runtime=100.0,
                      walltime=100.0, mem=1 * GiB)
        run_sim(cluster, Scheduler(penalty=NoPenalty()), [j1, j2])
        assert j1.start_time == 0.0
        assert j2.start_time == 1.0
        assert set(j1.assigned_nodes).isdisjoint(j2.assigned_nodes)

    def test_empty_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            SchedulerSimulation(four_node_cluster(), Scheduler(), [])

    def test_duplicate_ids_rejected(self):
        jobs = [make_job(job_id=1), make_job(job_id=1, submit=10.0)]
        with pytest.raises(ConfigurationError):
            SchedulerSimulation(four_node_cluster(), Scheduler(), jobs)

    def test_non_pending_jobs_rejected(self):
        job = make_job(job_id=1)
        job.state = JobState.COMPLETED
        with pytest.raises(ConfigurationError):
            SchedulerSimulation(four_node_cluster(), Scheduler(), [job])

    def test_run_twice_rejected(self):
        sim = SchedulerSimulation(
            four_node_cluster(), Scheduler(penalty=NoPenalty()), [make_job(job_id=1)]
        )
        sim.run()
        with pytest.raises(SimulationError):
            sim.run()


class TestEasyBackfillScenarios:
    def scenario_jobs(self):
        # J1 occupies 3 of 4 nodes for 100s; J2 (4 nodes) blocks at head;
        # J3 is a short 1-node job that fits the hole; J4 is long and
        # would delay J2.
        j1 = make_job(job_id=1, submit=0.0, nodes=3, runtime=100.0,
                      walltime=100.0, mem=1 * GiB)
        j2 = make_job(job_id=2, submit=1.0, nodes=4, runtime=50.0,
                      walltime=50.0, mem=1 * GiB)
        j3 = make_job(job_id=3, submit=2.0, nodes=1, runtime=20.0,
                      walltime=20.0, mem=1 * GiB)
        j4 = make_job(job_id=4, submit=30.0, nodes=1, runtime=200.0,
                      walltime=200.0, mem=1 * GiB)
        return j1, j2, j3, j4

    def test_easy_backfills_short_job(self):
        cluster = four_node_cluster()
        j1, j2, j3, j4 = self.scenario_jobs()
        result = run_sim(
            cluster,
            Scheduler(backfill=EasyBackfill(), penalty=NoPenalty()),
            [j1, j2, j3, j4],
        )
        assert j1.start_time == 0.0
        assert j3.start_time == 2.0  # backfilled into the hole
        assert j2.start_time == 100.0  # head not delayed
        assert j4.start_time == 150.0  # would have delayed the head
        # The head's promise was honored.
        assert result.promises[2].promised_start == 100.0

    def test_no_backfill_blocks(self):
        cluster = four_node_cluster()
        j1, j2, j3, j4 = self.scenario_jobs()
        run_sim(
            cluster,
            Scheduler(backfill=NoBackfill(), penalty=NoPenalty()),
            [j1, j2, j3, j4],
        )
        # J3 cannot jump the blocked head.
        assert j2.start_time == 100.0
        assert j3.start_time == 150.0
        assert j4.start_time == 150.0

    def test_conservative_backfills_short_job(self):
        cluster = four_node_cluster()
        j1, j2, j3, j4 = self.scenario_jobs()
        run_sim(
            cluster,
            Scheduler(backfill=ConservativeBackfill(), penalty=NoPenalty()),
            [j1, j2, j3, j4],
        )
        assert j3.start_time == 2.0
        assert j2.start_time == 100.0
        assert j4.start_time == 150.0

    def test_early_finish_pulls_schedule_forward(self):
        # Runtimes shorter than estimates: EASY must re-dispatch early.
        cluster = four_node_cluster()
        j1 = make_job(job_id=1, submit=0.0, nodes=4, runtime=50.0,
                      walltime=500.0, mem=1 * GiB)
        j2 = make_job(job_id=2, submit=1.0, nodes=4, runtime=50.0,
                      walltime=500.0, mem=1 * GiB)
        run_sim(cluster, Scheduler(penalty=NoPenalty()), [j1, j2])
        assert j2.start_time == 50.0  # not 500

    def test_backfill_depth_limits_candidates_per_cycle(self):
        # Two holes exist, two fillers are queued, but depth=1 examines
        # only the first candidate per cycle: the second filler must
        # wait for the next scheduling event (the first one finishing).
        cluster = four_node_cluster()
        j1 = make_job(job_id=1, submit=0.0, nodes=2, runtime=100.0,
                      walltime=100.0, mem=1 * GiB)
        j2 = make_job(job_id=2, submit=1.0, nodes=4, runtime=100.0,
                      walltime=100.0, mem=1 * GiB)
        f1 = make_job(job_id=10, submit=2.0, nodes=1, runtime=10.0,
                      walltime=10.0, mem=1 * GiB)
        f2 = make_job(job_id=11, submit=2.0, nodes=1, runtime=10.0,
                      walltime=10.0, mem=1 * GiB)
        sched = Scheduler(backfill=EasyBackfill(depth=1), penalty=NoPenalty())
        run_sim(cluster, sched, [j1, j2, f1, f2])
        assert f1.start_time == 2.0
        assert f2.start_time == 12.0  # next cycle, not same-instant

    def test_backfill_default_depth_takes_both(self):
        cluster = four_node_cluster()
        j1 = make_job(job_id=1, submit=0.0, nodes=2, runtime=100.0,
                      walltime=100.0, mem=1 * GiB)
        j2 = make_job(job_id=2, submit=1.0, nodes=4, runtime=100.0,
                      walltime=100.0, mem=1 * GiB)
        f1 = make_job(job_id=10, submit=2.0, nodes=1, runtime=10.0,
                      walltime=10.0, mem=1 * GiB)
        f2 = make_job(job_id=11, submit=2.0, nodes=1, runtime=10.0,
                      walltime=10.0, mem=1 * GiB)
        run_sim(cluster, Scheduler(penalty=NoPenalty()), [j1, j2, f1, f2])
        assert f1.start_time == 2.0
        assert f2.start_time == 2.0


class TestMemoryScenarios:
    def pool_cluster(self):
        spec = ClusterSpec(
            name="mem",
            num_nodes=2,
            nodes_per_rack=2,
            node=NodeSpec(cores=8, local_mem=16 * GiB),
            pool=PoolSpec(global_pool=8 * GiB),
        )
        return Cluster(spec)

    def test_dilation_extends_runtime(self):
        cluster = self.pool_cluster()
        job = make_job(job_id=1, submit=0.0, nodes=1, runtime=100.0,
                       walltime=200.0, mem=20 * GiB)  # 4 GiB remote, f=0.2
        run_sim(
            cluster, Scheduler(penalty=LinearPenalty(beta=0.5)), [job]
        )
        assert job.dilation == pytest.approx(0.1)
        assert job.end_time == pytest.approx(110.0)
        assert job.local_grant_per_node == 16 * GiB
        assert job.remote_per_node == 4 * GiB
        assert job.pool_grants == {"global": 4 * GiB}

    def test_pool_exhaustion_delays_start(self):
        cluster = self.pool_cluster()
        j1 = make_job(job_id=1, submit=0.0, nodes=1, runtime=100.0,
                      walltime=100.0, mem=22 * GiB)  # 6 GiB remote
        j2 = make_job(job_id=2, submit=1.0, nodes=1, runtime=100.0,
                      walltime=100.0, mem=20 * GiB)  # 4 GiB remote > 2 free
        run_sim(cluster, Scheduler(penalty=NoPenalty()), [j1, j2])
        assert j1.start_time == 0.0
        # Node 1 is free the whole time, but the pool is not.
        assert j2.start_time == pytest.approx(100.0)

    def test_memory_aware_easy_backfills_around_pool_blockage(self):
        cluster = self.pool_cluster()
        j1 = make_job(job_id=1, submit=0.0, nodes=1, runtime=100.0,
                      walltime=100.0, mem=22 * GiB)  # 6 GiB remote
        j2 = make_job(job_id=2, submit=1.0, nodes=1, runtime=100.0,
                      walltime=100.0, mem=20 * GiB)  # blocked on pool
        j3 = make_job(job_id=3, submit=2.0, nodes=1, runtime=30.0,
                      walltime=30.0, mem=8 * GiB)  # local-only, short
        result = run_sim(cluster, Scheduler(penalty=NoPenalty()), [j1, j2, j3])
        # j3 fits on the free node and finishes before j2's promised
        # pool availability at t=100.
        assert j3.start_time == 2.0
        assert j2.start_time == pytest.approx(100.0)
        assert result.promises[2].promised_start == pytest.approx(100.0)

    def three_node_pool_cluster(self):
        spec = ClusterSpec(
            name="mem3",
            num_nodes=3,
            nodes_per_rack=3,
            node=NodeSpec(cores=8, local_mem=16 * GiB),
            pool=PoolSpec(global_pool=8 * GiB),
        )
        return Cluster(spec)

    def pathology_jobs(self):
        # j1 holds half the pool; j2 (head) needs the *whole* pool;
        # j3 is a long remote-memory candidate. Nodes are plentiful
        # throughout — the pool is the only bottleneck.
        j1 = make_job(job_id=1, submit=0.0, nodes=1, runtime=100.0,
                      walltime=100.0, mem=20 * GiB)  # 4 GiB remote
        j2 = make_job(job_id=2, submit=1.0, nodes=1, runtime=100.0,
                      walltime=100.0, mem=24 * GiB)  # 8 GiB remote
        j3 = make_job(job_id=3, submit=2.0, nodes=1, runtime=500.0,
                      walltime=500.0, mem=20 * GiB)  # 4 GiB remote
        return j1, j2, j3

    def test_memory_unaware_easy_breaks_promises(self):
        """The paper's pathology: a nodes-only shadow lets backfills
        squat on pool memory the head was implicitly waiting for."""
        j1, j2, j3 = self.pathology_jobs()
        sched = Scheduler(
            backfill=EasyBackfill(memory_aware=False), penalty=NoPenalty()
        )
        result = SchedulerSimulation(
            self.three_node_pool_cluster(), sched, [j1, j2, j3]
        ).run()
        audit_result(result)  # promises not enforced for unaware runs
        # The unaware shadow claimed j2 could start immediately (nodes
        # are free), so the long pool-squatting j3 was backfilled...
        assert j3.start_time == 2.0
        # ...and j2's realized start blows past that phantom promise:
        # it now needs j3's grant back, not just j1's.
        assert result.promises[2].promised_start == pytest.approx(1.0)
        assert j2.start_time == pytest.approx(502.0)

    def test_memory_aware_easy_protects_the_head(self):
        """Same workload, memory-aware shadow: the long candidate is
        denied and the head starts exactly when promised."""
        j1, j2, j3 = self.pathology_jobs()
        result = run_sim(
            self.three_node_pool_cluster(),
            Scheduler(penalty=NoPenalty()),
            [j1, j2, j3],
        )
        assert result.promises[2].promised_start == pytest.approx(100.0)
        assert j2.start_time == pytest.approx(100.0)  # promise honored
        assert j3.start_time == pytest.approx(200.0)  # after the head

    def test_rejected_when_never_fits(self):
        cluster = self.pool_cluster()
        giant_nodes = make_job(job_id=1, nodes=3, mem=1 * GiB)
        giant_mem = make_job(job_id=2, submit=1.0, nodes=2,
                             mem=16 * GiB + 5 * GiB)  # 10 GiB remote > 8
        ok = make_job(job_id=3, submit=2.0, nodes=1, runtime=10.0,
                      walltime=20.0, mem=1 * GiB)
        result = run_sim(cluster, Scheduler(penalty=NoPenalty()),
                         [giant_nodes, giant_mem, ok])
        assert giant_nodes.state is JobState.REJECTED
        assert giant_mem.state is JobState.REJECTED
        assert ok.state is JobState.COMPLETED
        assert result.summary_counts()["rejected"] == 2


class TestKillPolicies:
    def pool_cluster(self):
        spec = ClusterSpec(
            num_nodes=1, nodes_per_rack=1,
            node=NodeSpec(local_mem=16 * GiB),
            pool=PoolSpec(global_pool=16 * GiB),
        )
        return Cluster(spec)

    def test_strict_kills_dilated_job(self):
        cluster = self.pool_cluster()
        # f = 0.5, beta = 0.4 -> dilation 0.2: dilated runtime 120 > 110.
        job = make_job(job_id=1, nodes=1, runtime=100.0, walltime=110.0,
                       mem=32 * GiB)
        run_sim(
            cluster,
            Scheduler(penalty=LinearPenalty(0.4), kill_policy=KillPolicy.STRICT),
            [job],
        )
        assert job.state is JobState.KILLED
        assert job.end_time == pytest.approx(110.0)

    def test_dilation_aware_lets_it_finish(self):
        cluster = self.pool_cluster()
        job = make_job(job_id=1, nodes=1, runtime=100.0, walltime=110.0,
                       mem=32 * GiB)
        run_sim(
            cluster,
            Scheduler(penalty=LinearPenalty(0.4),
                      kill_policy=KillPolicy.DILATION_AWARE),
            [job],
        )
        assert job.state is JobState.COMPLETED
        assert job.end_time == pytest.approx(120.0)

    def test_dilation_aware_still_kills_underestimates(self):
        cluster = self.pool_cluster()
        # Base runtime exceeds walltime: killed at dilated walltime.
        job = make_job(job_id=1, nodes=1, runtime=100.0, walltime=80.0,
                       mem=32 * GiB)
        run_sim(
            cluster,
            Scheduler(penalty=LinearPenalty(0.4),
                      kill_policy=KillPolicy.DILATION_AWARE),
            [job],
        )
        assert job.state is JobState.KILLED
        assert job.end_time == pytest.approx(96.0)  # 80 * 1.2

    def test_none_never_kills(self):
        cluster = self.pool_cluster()
        job = make_job(job_id=1, nodes=1, runtime=100.0, walltime=50.0,
                       mem=32 * GiB)
        result = SchedulerSimulation(
            cluster,
            Scheduler(penalty=LinearPenalty(0.4), kill_policy=KillPolicy.NONE),
            [job],
        ).run()
        audit_result(result)
        assert job.state is JobState.COMPLETED
        assert job.end_time == pytest.approx(120.0)


class TestGates:
    def contended_cluster(self):
        spec = ClusterSpec(
            num_nodes=2, nodes_per_rack=2,
            node=NodeSpec(local_mem=16 * GiB),
            # bandwidth 8 GiB: pressure = used/8GiB
            pool=PoolSpec(global_pool=16 * GiB,
                          global_bandwidth=float(8 * GiB)),
        )
        return Cluster(spec)

    def test_pressure_gate_defers_second_remote_job(self):
        cluster = self.contended_cluster()
        j1 = make_job(job_id=1, submit=0.0, nodes=1, runtime=100.0,
                      walltime=100.0, mem=22 * GiB)  # 6 GiB remote, p=0.75
        j2 = make_job(job_id=2, submit=1.0, nodes=1, runtime=100.0,
                      walltime=100.0, mem=20 * GiB)  # would push p to 1.25
        sched = Scheduler(
            penalty=ContentionPenalty(beta=0.4, kappa=2.0, threshold=0.5),
            gate=PressureGate(threshold=0.8, max_hold=10_000.0),
        )
        result = SchedulerSimulation(cluster, sched, [j1, j2]).run()
        audit_result(result)
        assert j1.start_time == 0.0
        # Gate held j2 until j1 released its grant.
        assert j2.start_time >= j1.end_time

    def test_pressure_gate_max_hold_escape(self):
        cluster = self.contended_cluster()
        j1 = make_job(job_id=1, submit=0.0, nodes=1, runtime=100.0,
                      walltime=100.0, mem=22 * GiB)
        j2 = make_job(job_id=2, submit=1.0, nodes=1, runtime=100.0,
                      walltime=100.0, mem=20 * GiB)
        sched = Scheduler(
            penalty=ContentionPenalty(beta=0.4, kappa=2.0, threshold=0.5),
            gate=PressureGate(threshold=0.8, max_hold=0.0),  # escape instantly
        )
        result = SchedulerSimulation(cluster, sched, [j1, j2]).run()
        audit_result(result)
        assert j2.start_time == pytest.approx(1.0)

    def test_gates_pass_local_jobs(self):
        cluster = self.contended_cluster()
        jobs = [
            make_job(job_id=i, submit=float(i), nodes=1, runtime=50.0,
                     walltime=60.0, mem=8 * GiB)
            for i in (1, 2)
        ]
        for gate in (PressureGate(), AdaptiveGate()):
            fresh = [j.copy_request() for j in jobs]
            sched = Scheduler(penalty=NoPenalty(), gate=gate)
            result = SchedulerSimulation(
                self.contended_cluster(), sched, fresh
            ).run()
            audit_result(result)
            assert all(j.state is JobState.COMPLETED for j in fresh)
            assert fresh[0].start_time == pytest.approx(1.0)

    def test_adaptive_gate_starts_when_wait_too_long(self):
        cluster = self.contended_cluster()
        # j1 holds the pool a very long time: waiting cannot pay off.
        j1 = make_job(job_id=1, submit=0.0, nodes=1, runtime=50_000.0,
                      walltime=50_000.0, mem=22 * GiB)
        j2 = make_job(job_id=2, submit=1.0, nodes=1, runtime=100.0,
                      walltime=100.0, mem=20 * GiB)
        sched = Scheduler(
            penalty=ContentionPenalty(beta=0.4, kappa=2.0, threshold=0.5),
            gate=AdaptiveGate(max_hold=100_000.0),
        )
        result = SchedulerSimulation(cluster, sched, [j1, j2]).run()
        audit_result(result)
        assert j2.start_time == pytest.approx(1.0)


class TestSamplingAndResult:
    def test_samples_collected(self):
        cluster = four_node_cluster()
        jobs = [
            make_job(job_id=1, submit=0.0, nodes=2, runtime=100.0,
                     walltime=100.0, mem=4 * GiB),
            make_job(job_id=2, submit=0.0, nodes=2, runtime=200.0,
                     walltime=200.0, mem=4 * GiB),
        ]
        result = SchedulerSimulation(
            cluster, Scheduler(penalty=NoPenalty()), jobs, sample_interval=50.0
        ).run()
        audit_result(result)
        assert len(result.samples) >= 3
        first = result.samples[0]
        assert first.busy_nodes == 4
        assert first.running_jobs == 2

    def test_result_bookkeeping(self):
        cluster = four_node_cluster()
        jobs = [
            make_job(job_id=1, submit=10.0, nodes=1, runtime=100.0,
                     walltime=100.0, mem=1 * GiB),
            make_job(job_id=2, submit=20.0, nodes=1, runtime=100.0,
                     walltime=100.0, mem=1 * GiB),
        ]
        result = run_sim(cluster, Scheduler(penalty=NoPenalty()), jobs)
        assert result.started_at == 10.0
        assert result.finished_at == 120.0
        assert result.makespan == 110.0
        assert result.summary_counts() == {
            "total": 2, "completed": 2, "killed": 0, "rejected": 0,
        }
        assert result.job(1).job_id == 1
        with pytest.raises(KeyError):
            result.job(99)
        assert result.cycles > 0
        assert result.events > 0

    def test_determinism(self):
        def build():
            cluster = four_node_cluster(global_pool=8 * GiB)
            jobs = [
                make_job(job_id=i, submit=float(i), nodes=1 + i % 3,
                         runtime=50.0 + i, walltime=100.0 + i,
                         mem=(4 + i) * GiB)
                for i in range(1, 20)
            ]
            sched = Scheduler(penalty=LinearPenalty(0.3))
            return SchedulerSimulation(cluster, sched, jobs).run()

        r1, r2 = build(), build()
        starts1 = [(j.job_id, j.start_time, tuple(j.assigned_nodes))
                   for j in r1.jobs]
        starts2 = [(j.job_id, j.start_time, tuple(j.assigned_nodes))
                   for j in r2.jobs]
        assert starts1 == starts2


class TestAuditCatchesCorruption:
    def test_audit_detects_node_overlap(self):
        cluster = four_node_cluster()
        jobs = [make_job(job_id=1, submit=0.0, nodes=1, runtime=100.0,
                         walltime=100.0, mem=1 * GiB),
                make_job(job_id=2, submit=0.0, nodes=1, runtime=100.0,
                         walltime=100.0, mem=1 * GiB)]
        result = SchedulerSimulation(
            cluster, Scheduler(penalty=NoPenalty()), jobs
        ).run()
        # Corrupt: pretend both jobs ran on node 0.
        jobs[1].assigned_nodes = [0]
        with pytest.raises(AuditError, match="double-booked"):
            audit_result(result)

    def test_audit_detects_bad_split(self):
        cluster = four_node_cluster()
        job = make_job(job_id=1, submit=0.0, nodes=1, runtime=100.0,
                       walltime=100.0, mem=1 * GiB)
        result = SchedulerSimulation(
            cluster, Scheduler(penalty=NoPenalty()), [job]
        ).run()
        job.remote_per_node = 512  # no matching pool grant
        with pytest.raises(AuditError):
            audit_result(result)

    def test_audit_detects_broken_promise(self):
        cluster = four_node_cluster()
        jobs = [make_job(job_id=1, submit=0.0, nodes=4, runtime=100.0,
                         walltime=100.0, mem=1 * GiB),
                make_job(job_id=2, submit=1.0, nodes=4, runtime=100.0,
                         walltime=100.0, mem=1 * GiB)]
        result = SchedulerSimulation(
            cluster, Scheduler(penalty=NoPenalty()), jobs
        ).run()
        # Corrupt the promise to something earlier than reality.
        from repro.engine.results import Promise

        result.promises[2] = Promise(2, 0.0, 50.0)
        with pytest.raises(AuditError, match="promise"):
            audit_result(result)

"""Tests for the wall-clock perf harness (`repro perf`).

Real measurements are exercised at tiny scale (``--scale``), so the
suite verifies plumbing — schema, determinism of case construction,
regression arithmetic, CLI exit codes — without long timings.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.perf import (
    build_cases,
    case_names,
    compare_reports,
    measure_sweep_throughput,
    run_perf,
    worker_ladder,
)
from repro.perf.core import PerfCase, render_report
from repro.perf.sweep_scaling import render_throughput

TINY = dict(quick=True, scale=0.01)


def _tiny_cases(names=None):
    return build_cases(names=names, **TINY)


class TestCaseRegistry:
    def test_case_names_stable(self):
        assert case_names() == [
            "profile_build",
            "profile_queries",
            "easy_pass",
            "conservative_pass",
            "e2e_easy",
            "e2e_conservative",
            "trace_scan_kernel",
            "trace_replay",
        ]

    def test_unknown_case_rejected(self):
        with pytest.raises(KeyError):
            build_cases(names=["nope"], **TINY)

    def test_subset_selection(self):
        cases = _tiny_cases(names=["e2e_easy"])
        assert [case.name for case in cases] == ["e2e_easy"]

    def test_cases_return_elapsed_and_events(self):
        for case in _tiny_cases(names=["profile_build", "easy_pass"]):
            elapsed, events = case.run_once()
            assert elapsed >= 0.0
            assert events > 0


class TestRunPerf:
    def test_report_schema(self):
        report = run_perf(
            _tiny_cases(names=["profile_queries"]),
            mode="quick",
            repeats_override=1,
        )
        payload = report.to_payload()
        assert payload["schema"] == 1
        assert payload["mode"] == "quick"
        assert payload["calibration_ms"] > 0
        case = payload["cases"]["profile_queries"]
        assert case["repeats"] == 1
        assert len(case["runs_ms"]) == 1
        assert case["median_ms"] >= 0
        assert case["events"] > 0
        assert case["normalized"] is not None
        # Render must not crash and must mention every case.
        table = render_report(payload)
        assert "profile_queries" in table

    def test_events_deterministic_across_runs(self):
        (case,) = _tiny_cases(names=["e2e_easy"])
        _, events_a = case.run_once()
        _, events_b = case.run_once()
        assert events_a == events_b  # same seeded workload every time


def _fake_report(normalized: dict) -> dict:
    return {
        "schema": 1,
        "mode": "quick",
        "calibration_ms": 50.0,
        "cases": {
            name: {"median_ms": 1.0, "normalized": value}
            for name, value in normalized.items()
        },
    }


class TestRegressionGate:
    def test_no_regression_within_tolerance(self):
        base = _fake_report({"a": 1.0, "b": 2.0})
        cur = _fake_report({"a": 1.2, "b": 2.1})
        assert compare_reports(cur, base, max_regression=0.25) == []

    def test_regression_detected(self):
        base = _fake_report({"a": 1.0})
        cur = _fake_report({"a": 1.4})
        regs = compare_reports(cur, base, max_regression=0.25)
        assert len(regs) == 1
        assert regs[0]["case"] == "a"
        assert regs[0]["ratio"] == pytest.approx(1.4)

    def test_new_and_removed_cases_ignored(self):
        base = _fake_report({"gone": 1.0, "kept": 1.0})
        cur = _fake_report({"kept": 1.0, "added": 99.0})
        assert compare_reports(cur, base, max_regression=0.25) == []

    def test_improvement_never_flags(self):
        base = _fake_report({"a": 10.0})
        cur = _fake_report({"a": 1.0})
        assert compare_reports(cur, base, max_regression=0.25) == []


class TestPerfCLI:
    def test_list(self, capsys):
        assert main(["perf", "--list"]) == 0
        out = capsys.readouterr().out
        assert "e2e_easy" in out

    def test_run_writes_json(self, tmp_path, capsys):
        out = tmp_path / "perf.json"
        code = main([
            "perf", "--quick", "--quiet", "--scale", "0.01",
            "--repeats", "1", "--case", "profile_build",
            "--out", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert "profile_build" in payload["cases"]

    def test_baseline_gate_passes_and_fails(self, tmp_path, capsys):
        out = tmp_path / "now.json"
        args = [
            "perf", "--quick", "--quiet", "--scale", "0.01",
            "--repeats", "1", "--case", "profile_build", "--out", str(out),
        ]
        assert main(args) == 0
        payload = json.loads(out.read_text())
        capsys.readouterr()

        # Baseline much slower than reality -> no regression.
        slow = json.loads(json.dumps(payload))
        slow["cases"]["profile_build"]["normalized"] *= 100
        slow_path = tmp_path / "slow.json"
        slow_path.write_text(json.dumps(slow))
        assert main(args + ["--baseline", str(slow_path)]) == 0

        # Baseline much faster than reality -> regression, exit 1.
        fast = json.loads(json.dumps(payload))
        fast["cases"]["profile_build"]["normalized"] /= 100
        fast_path = tmp_path / "fast.json"
        fast_path.write_text(json.dumps(fast))
        assert main(args + ["--baseline", str(fast_path)]) == 1

    def test_baseline_mode_mismatch_errors(self, tmp_path, capsys):
        out = tmp_path / "now.json"
        args = [
            "perf", "--quick", "--quiet", "--scale", "0.01",
            "--repeats", "1", "--case", "profile_build", "--out", str(out),
        ]
        assert main(args) == 0
        payload = json.loads(out.read_text())
        payload["mode"] = "full"
        other = tmp_path / "full.json"
        other.write_text(json.dumps(payload))
        assert main(args + ["--baseline", str(other)]) == 1

    def test_unknown_case_errors(self, capsys):
        assert main(["perf", "--case", "bogus", "--quiet"]) == 1

    def test_baseline_missing_or_corrupt_clean_error(self, tmp_path, capsys):
        args = [
            "perf", "--quick", "--quiet", "--scale", "0.01",
            "--repeats", "1", "--case", "profile_build", "--out", "",
        ]
        assert main(args + ["--baseline", str(tmp_path / "nope.json")]) == 1
        assert "error: cannot read baseline" in capsys.readouterr().err
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(args + ["--baseline", str(bad)]) == 1
        assert "not valid JSON" in capsys.readouterr().err


def test_perfcase_dataclass_shape():
    case = PerfCase(
        name="x", description="d", run_once=lambda: (0.0, 1), repeats=2
    )
    assert case.repeats == 2 and case.tags == ()


class TestSweepThroughput:
    def test_worker_ladder_shape(self):
        assert worker_ladder(1) == [1]
        assert worker_ladder(2) == [1, 2]
        assert worker_ladder(4) == [1, 2, 4]
        assert worker_ladder(6) == [1, 2, 4, 6]
        assert worker_ladder(8) == [1, 2, 4, 8]
        with pytest.raises(ValueError):
            worker_ladder(0)

    def test_measure_smoke(self):
        """Tiny ladder through the real runner: schema + full rungs."""
        lines = []
        payload = measure_sweep_throughput(
            2, cells=2, jobs_per_cell=25, progress=lines.append
        )
        assert payload["cells"] == 2
        assert [r["workers"] for r in payload["rungs"]] == [1, 2]
        for rung in payload["rungs"]:
            assert rung["cells"] == 2
            assert rung["cells_per_sec"] > 0
            assert rung["efficiency"] is not None
        assert payload["rungs"][0]["speedup"] == pytest.approx(1.0)
        assert len(lines) == 2
        table = render_throughput(payload)
        assert "cells/sec" in table and "workers" in table

    def test_cli_workers_flag(self, tmp_path, capsys):
        out = tmp_path / "perf.json"
        # --workers-history must point into tmp: the default path is
        # the *checked-in* trend history, which a test run must never
        # pollute (it silently did before this flag was passed here).
        history = tmp_path / "history.jsonl"
        code = main([
            "perf", "--quick", "--quiet", "--scale", "0.01",
            "--repeats", "1", "--case", "profile_build",
            "--workers", "2", "--sweep-cells", "2", "--out", str(out),
            "--workers-history", str(history),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert "sweep_throughput" in payload
        rungs = payload["sweep_throughput"]["rungs"]
        assert [r["workers"] for r in rungs] == [1, 2]
        printed = capsys.readouterr().out
        assert "sweep throughput" in printed
        # One appended record => the trend report renders and rides
        # along in the payload.
        assert "efficiency trend" in printed
        trend = payload["sweep_throughput"]["trend"]
        assert trend["records"] == 1
        assert trend["platforms"][0]["rungs"][0]["samples"] == 1

    def test_throughput_never_gates(self, tmp_path, capsys):
        """The baseline gate must ignore the sweep_throughput section
        (it has no 'cases' entry, so compare_reports skips it)."""
        base = _fake_report({"profile_build": 1.0})
        cur = _fake_report({"profile_build": 1.0})
        cur["sweep_throughput"] = {"cells": 2, "rungs": []}
        assert compare_reports(cur, base, max_regression=0.25) == []


class TestWorkersHistory:
    """Efficiency-trend tracking: `repro perf --workers` appends every
    ladder run to a JSONL history whose first record is the baseline
    that CI flags parallel-efficiency regressions against."""

    PAYLOAD = {
        "cells": 8,
        "jobs_per_cell": 60,
        "rungs": [
            {"workers": 1, "elapsed_s": 1.0, "cells_per_sec": 8.0,
             "speedup": 1.0, "efficiency": 1.0},
            {"workers": 2, "elapsed_s": 0.6, "cells_per_sec": 13.3,
             "speedup": 1.667, "efficiency": 0.833},
        ],
    }

    def test_append_creates_and_extends_jsonl(self, tmp_path):
        from repro.perf import append_workers_history

        path = tmp_path / "workers_history.jsonl"
        first = append_workers_history(self.PAYLOAD, path)
        second = append_workers_history(self.PAYLOAD, path)
        assert first is not None and second is not None
        lines = path.read_text().strip().split("\n")
        assert len(lines) == 2
        record = json.loads(lines[0])
        assert record["schema"] == 1
        assert record["rungs"][1]["efficiency"] == 0.833

    def test_append_skips_when_directory_absent(self, tmp_path):
        from repro.perf import append_workers_history

        missing = tmp_path / "no-such-dir" / "history.jsonl"
        assert append_workers_history(self.PAYLOAD, missing) is None
        assert not missing.exists()

    def test_regression_flagged_against_first_record(self, tmp_path):
        from repro.perf import append_workers_history, efficiency_regressions

        path = tmp_path / "workers_history.jsonl"
        append_workers_history(self.PAYLOAD, path)
        degraded = {
            "rungs": [
                {"workers": 1, "cells_per_sec": 8.0, "speedup": 1.0,
                 "efficiency": 1.0},
                {"workers": 2, "cells_per_sec": 9.0, "speedup": 1.1,
                 "efficiency": 0.55},
            ]
        }
        flags = efficiency_regressions(degraded, path, max_regression=0.25)
        assert flags == [{
            "workers": 2,
            "baseline_efficiency": 0.833,
            "current_efficiency": 0.55,
            "floor": round(0.833 * 0.75, 3),
        }]
        # Within tolerance: no flags; serial rungs never flag.
        ok = {"rungs": [{"workers": 2, "cells_per_sec": 12.0,
                         "speedup": 1.5, "efficiency": 0.75}]}
        assert efficiency_regressions(ok, path, max_regression=0.25) == []

    def test_no_history_means_no_flags(self, tmp_path):
        from repro.perf import efficiency_regressions

        assert efficiency_regressions(
            self.PAYLOAD, tmp_path / "absent.jsonl"
        ) == []

    def test_checked_in_baseline_parses(self):
        with open("benchmarks/perf/workers_history.jsonl") as handle:
            record = json.loads(handle.readline())
        assert record["schema"] == 1
        assert record["platform"]  # the baseline-matching key
        assert any(r["workers"] > 1 for r in record["rungs"])

    def test_baseline_matching_is_per_platform(self, tmp_path):
        from repro.perf import efficiency_regressions

        path = tmp_path / "history.jsonl"
        foreign = {
            "schema": 1, "platform": "SomeOtherOS-1.0",
            "rungs": [{"workers": 2, "efficiency": 0.9}],
        }
        path.write_text(json.dumps(foreign) + "\n")
        degraded = {"rungs": [{"workers": 2, "cells_per_sec": 1.0,
                               "speedup": 1.0, "efficiency": 0.2}]}
        # A foreign-platform record is not a meaningful floor.
        assert efficiency_regressions(degraded, path) == []


class TestWorkersTrend:
    """The trend *report* over the whole history: per-platform series
    with baseline / median / latest per worker count — the successor
    of the first-record-only comparison."""

    @staticmethod
    def _record(platform, eff2, at):
        return {
            "schema": 1, "recorded_at": at, "platform": platform,
            "rungs": [
                {"workers": 1, "cells_per_sec": 10.0, "speedup": 1.0,
                 "efficiency": 1.0},
                {"workers": 2, "cells_per_sec": 10.0 * 2 * eff2,
                 "speedup": 2 * eff2, "efficiency": eff2},
            ],
        }

    def _history(self, tmp_path, records):
        path = tmp_path / "history.jsonl"
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        return path

    def test_series_baseline_median_latest(self, tmp_path):
        from repro.perf import workers_trend

        path = self._history(tmp_path, [
            self._record("hostA", 0.8, "t1"),
            self._record("hostA", 0.6, "t2"),
            self._record("hostA", 0.7, "t3"),
        ])
        trend = workers_trend(path)
        assert trend["records"] == 3
        (entry,) = trend["platforms"]
        assert entry["platform"] == "hostA"
        assert entry["first_recorded"] == "t1"
        assert entry["last_recorded"] == "t3"
        rung2 = next(r for r in entry["rungs"] if r["workers"] == 2)
        assert rung2["efficiency_series"] == [0.8, 0.6, 0.7]
        assert rung2["baseline_efficiency"] == 0.8
        assert rung2["latest_efficiency"] == 0.7
        assert rung2["median_efficiency"] == 0.7
        assert rung2["delta_vs_baseline"] == pytest.approx(-0.1)

    def test_platforms_never_mix(self, tmp_path):
        from repro.perf import workers_trend

        path = self._history(tmp_path, [
            self._record("hostA", 0.8, "t1"),
            self._record("hostB", 0.2, "t2"),
        ])
        trend = workers_trend(path)
        assert {p["platform"] for p in trend["platforms"]} == {"hostA", "hostB"}
        for entry in trend["platforms"]:
            assert entry["runs"] == 1

    def test_empty_history_yields_none(self, tmp_path):
        from repro.perf import workers_trend

        assert workers_trend(tmp_path / "absent.jsonl") is None
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert workers_trend(empty) is None

    def test_torn_line_is_skipped(self, tmp_path):
        from repro.perf import workers_trend

        path = self._history(tmp_path, [self._record("hostA", 0.8, "t1")])
        with path.open("a") as handle:
            handle.write('{"schema": 1, "recorded_at": "t2", "platfo\n')
        trend = workers_trend(path)
        assert trend["records"] == 1

    def test_render_skips_serial_rung(self, tmp_path):
        from repro.perf import render_workers_trend, workers_trend

        path = self._history(tmp_path, [
            self._record("hostA", 0.8, "t1"),
            self._record("hostA", 0.75, "t2"),
        ])
        table = render_workers_trend(workers_trend(path))
        assert "efficiency trend: hostA — 2 runs" in table
        assert "80%" in table and "75%" in table
        # The serial rung is 1.0 by construction and never rendered.
        assert "100%" not in table

    def test_checked_in_history_renders(self):
        from repro.perf import render_workers_trend, workers_trend

        trend = workers_trend("benchmarks/perf/workers_history.jsonl")
        assert trend is not None
        assert render_workers_trend(trend)

class TestTrendFreshCloneRobustness:
    """A fresh clone's first ``repro perf --workers`` run meets
    whatever workers-history it finds — absent, empty, torn, or
    hand-mangled — and must degrade to "no trend", never crash."""

    def _payload(self, eff2=0.8):
        return {"rungs": [{"workers": 2, "cells_per_sec": 16.0,
                           "speedup": 2 * eff2, "efficiency": eff2}]}

    def test_missing_and_empty_history(self, tmp_path):
        from repro.perf import efficiency_regressions, workers_trend

        absent = tmp_path / "no" / "history.jsonl"
        assert efficiency_regressions(self._payload(), absent) == []
        assert workers_trend(absent) is None
        empty = tmp_path / "history.jsonl"
        empty.write_text("")
        assert efficiency_regressions(self._payload(), empty) == []
        assert workers_trend(empty) is None

    def test_rung_without_workers_key(self, tmp_path):
        """Regression: a same-platform record whose rung carried an
        efficiency but no worker count raised KeyError('workers')."""
        import platform

        from repro.perf import efficiency_regressions

        path = tmp_path / "history.jsonl"
        path.write_text(json.dumps({
            "schema": 1, "platform": platform.platform(),
            "rungs": [{"efficiency": 0.9, "cells_per_sec": 5.0}],
        }) + "\n")
        assert efficiency_regressions(self._payload(0.1), path) == []

    def test_scalar_lines_and_non_dict_rungs(self, tmp_path):
        import platform

        from repro.perf import efficiency_regressions, workers_trend

        here = platform.platform()
        path = tmp_path / "history.jsonl"
        path.write_text("\n".join([
            "42",                                     # scalar JSON line
            '"just a string"',
            json.dumps({"platform": here, "rungs": "oops"}),
            json.dumps({"platform": here,
                        "rungs": ["junk", {"workers": True,
                                           "efficiency": 0.5}]}),
            json.dumps({"platform": here,
                        "rungs": [{"workers": 2, "efficiency": 0.9,
                                   "cells_per_sec": 18.0}]}),
        ]) + "\n")
        # Only the last record's rung survives the filter.
        flags = efficiency_regressions(self._payload(0.5), path)
        assert flags and flags[0]["baseline_efficiency"] == 0.9
        trend = workers_trend(path)
        (entry,) = [p for p in trend["platforms"] if p["platform"] == here]
        (rung,) = entry["rungs"]
        assert rung["workers"] == 2
        assert rung["efficiency_series"] == [0.9]

    def test_missing_recorded_at_renders(self, tmp_path):
        from repro.perf import render_workers_trend, workers_trend

        path = tmp_path / "history.jsonl"
        path.write_text(json.dumps({
            "platform": "hostX",
            "rungs": [{"workers": 2, "efficiency": 0.7,
                       "cells_per_sec": 14.0}],
        }) + "\n")
        table = render_workers_trend(workers_trend(path))
        assert "unknown .. unknown" in table
        assert "None" not in table

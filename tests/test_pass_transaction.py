"""Differential + unit suite for the pass-transaction engine core.

The engine now applies each scheduling pass as one transaction: the
strategy-visible half of every start is immediate, while the ledger
entries, completion events, queue removal, and cluster-version bump
are batch-committed at pass end.  The historical one-start-at-a-time
path is retained behind ``batch_starts=False`` as the anchor: every
test here runs the same workload through both and requires the results
to be **bit-identical** — schedules, ledger entry sequences, promises,
cycle counts, processed-event counts.

Coverage follows the satellite checklist: fcfs/sjf/fairshare queue
orders, metered-pool start gates (whose ``permit`` consults live
mid-pass state — the part that must *not* be deferred), and
node-failure drains with checkpoint restarts.  A hypothesis layer
fuzzes workload shapes beyond the parametrized grid.

The sim-layer batch primitives (``push_many`` / ``pop_group`` /
``schedule_batch``) and the cluster version batch get direct unit
tests, including the popped-event cancellation accounting the group
run loop depends on.
"""

from __future__ import annotations

import random
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, ClusterSpec, NodeSpec, PoolSpec
from repro.engine.failures import FailureEvent
from repro.engine.simulation import SchedulerSimulation
from repro.errors import AllocationError
from repro.memdis.ledger import MemoryLedger
from repro.sched.base import PassTransaction, build_scheduler
from repro.sim.engine import Simulator
from repro.sim.events import Event, EventPriority
from repro.sim.queue import EventQueue
from repro.units import GiB, HOUR
from repro.workload import Job

# ----------------------------------------------------------------------
# builders (mirroring the conservative differential suite)
# ----------------------------------------------------------------------


def _spec(kind: str) -> ClusterSpec:
    if kind == "thin-global":
        return ClusterSpec(
            name=kind, num_nodes=16, nodes_per_rack=8,
            node=NodeSpec(cores=8, local_mem=16 * GiB),
            pool=PoolSpec(global_pool=128 * GiB),
        )
    if kind == "metered":
        return ClusterSpec(
            name=kind, num_nodes=16, nodes_per_rack=8,
            node=NodeSpec(cores=8, local_mem=16 * GiB),
            pool=PoolSpec(global_pool=128 * GiB, global_bandwidth=64 * 1024.0),
        )
    raise AssertionError(kind)


def _jobs(rng: random.Random, num_jobs: int = 32, quantized: bool = False):
    jobs = []
    t = 0.0
    for job_id in range(1, num_jobs + 1):
        if quantized:
            # Same-instant submissions produce multi-start passes and
            # same-instant completion groups — the batch shapes.
            t += rng.choice((0.0, 0.0, 0.0, 300.0, 600.0))
            walltime = rng.choice((600.0, 1200.0, 1800.0))
        else:
            t += rng.expovariate(1.0 / 350.0)
            walltime = rng.uniform(300.0, 5 * HOUR)
        jobs.append(Job(
            job_id=job_id,
            submit_time=round(t, 3),
            nodes=rng.randint(1, 10),
            walltime=walltime,
            runtime=walltime * rng.uniform(0.2, 1.0),
            mem_per_node=rng.choice((4, 8, 16, 24, 32)) * GiB,
            user=f"user{rng.randint(0, 3)}",
        ))
    return jobs


def _schedule_record(result):
    return [
        (
            job.job_id,
            job.state.value,
            job.start_time,
            job.end_time,
            tuple(job.assigned_nodes),
            tuple(sorted(job.pool_grants.items())),
            job.dilation,
        )
        for job in sorted(result.jobs, key=lambda j: j.job_id)
    ]


def _ledger_record(result):
    return [
        (e.time, e.job_id, e.kind, e.local_total, e.pool_grants)
        for e in result.ledger
    ]


def _run_batch_vs_sequential(spec, jobs, failures=(), **sched_kwargs):
    sched_kwargs.setdefault("penalty", {"kind": "linear", "beta": 0.3})
    results = []
    for batch in (True, False):
        sim = SchedulerSimulation(
            Cluster(spec),
            build_scheduler(**sched_kwargs),
            [job.copy_request() for job in jobs],
            failures=list(failures),
            batch_starts=batch,
        )
        results.append(sim.run())
    batched, sequential = results
    assert _schedule_record(batched) == _schedule_record(sequential)
    assert _ledger_record(batched) == _ledger_record(sequential)
    assert batched.promises == sequential.promises
    assert batched.cycles == sequential.cycles
    assert batched.events == sequential.events
    return batched


def _rng(token: str) -> random.Random:
    return random.Random(zlib.crc32(token.encode()))


# ----------------------------------------------------------------------
# batch-apply ≡ sequential differentials
# ----------------------------------------------------------------------


class TestBatchApplyEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("queue", ["fcfs", "sjf", "fairshare"])
    @pytest.mark.parametrize("backfill", ["easy", "conservative"])
    def test_policies_identical(self, seed, queue, backfill):
        token = f"txn-{seed}-{queue}-{backfill}"
        jobs = _jobs(_rng(token))
        _run_batch_vs_sequential(
            _spec("thin-global"), jobs, queue=queue, backfill=backfill
        )

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("gate", ["pressure", "adaptive"])
    def test_metered_gates_identical(self, seed, gate):
        """Gates consult live mid-pass state (pool pressure, the
        running set); deferring any strategy-visible effect would
        change their vetoes."""
        token = f"txn-gate-{seed}-{gate}"
        jobs = _jobs(_rng(token))
        _run_batch_vs_sequential(
            _spec("metered"), jobs, gate=gate, backfill="easy",
            penalty={"kind": "contention", "beta": 0.3, "kappa": 2.0},
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_quantized_multistart_identical(self, seed):
        """Coarse time grids make single passes start several jobs at
        one instant — the completion-group batch shape."""
        token = f"txn-grid-{seed}"
        jobs = _jobs(_rng(token), quantized=True)
        _run_batch_vs_sequential(
            _spec("thin-global"), jobs, backfill="conservative"
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_failure_drains_identical(self, seed):
        """Node failures cancel committed end events mid-calendar and
        drain nodes; repairs and checkpoint restarts re-enter through
        fresh passes."""
        token = f"txn-fail-{seed}"
        rng = _rng(token)
        jobs = _jobs(rng)
        for job in jobs[::4]:
            job.checkpoint_interval = 600.0
        failures = [
            FailureEvent(
                time=rng.uniform(0.0, 8000.0),
                node_id=rng.randrange(16),
                repair_time=rng.uniform(500.0, 4000.0),
            )
            for _ in range(rng.randint(1, 4))
        ]
        _run_batch_vs_sequential(
            _spec("thin-global"), jobs, backfill="conservative",
            failures=failures,
        )

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        num_jobs=st.integers(4, 24),
        backfill=st.sampled_from(["none", "easy", "conservative"]),
        queue=st.sampled_from(["fcfs", "sjf", "fairshare"]),
        kind=st.sampled_from(["thin-global", "metered"]),
        quantized=st.booleans(),
    )
    def test_hypothesis_identical(self, seed, num_jobs, backfill, queue,
                                  kind, quantized):
        jobs = _jobs(
            random.Random(seed), num_jobs=num_jobs, quantized=quantized
        )
        _run_batch_vs_sequential(
            _spec(kind), jobs, queue=queue, backfill=backfill
        )

    @pytest.mark.parametrize("backfill", ["easy", "conservative"])
    @pytest.mark.parametrize("seed", range(4))
    def test_identical_under_both_sweep_kernels(self, seed, backfill):
        """batch ≡ sequential must hold with the vectorized sweep
        kernel on and off — and the schedules themselves must not
        depend on the kernel (pure acceleration)."""
        pytest.importorskip("numpy")
        from repro.sched.profile import set_kernel
        token = f"txn-kernel-{seed}-{backfill}"
        jobs = _jobs(_rng(token), quantized=bool(seed % 2))
        records = {}
        previous = set_kernel("numpy")
        try:
            for kernel in ("numpy", "scalar"):
                set_kernel(kernel)
                batched = _run_batch_vs_sequential(
                    _spec("thin-global"), jobs, backfill=backfill
                )
                records[kernel] = _schedule_record(batched)
        finally:
            set_kernel(previous)
        assert records["numpy"] == records["scalar"]


# ----------------------------------------------------------------------
# sim-layer batch primitives
# ----------------------------------------------------------------------


def _event(time, priority, seq, log, tag):
    return Event(
        time=time, priority=priority, seq=seq,
        callback=lambda e: log.append(tag), payload=tag,
    )


class TestEventQueueBatch:
    def test_push_many_matches_push_order(self):
        rng = random.Random(7)
        specs = [
            (rng.choice((1.0, 2.0, 3.0)), rng.randrange(3), seq)
            for seq in range(40)
        ]
        one, many = EventQueue(), EventQueue()
        for t, p, s in specs:
            one.push(_event(t, p, s, [], s))
        many.push_many([_event(t, p, s, [], s) for t, p, s in specs])
        assert [e.seq for e in one.drain()] == [e.seq for e in many.drain()]

    def test_push_many_heapify_path(self):
        # A batch larger than the standing heap takes the heapify arm.
        queue = EventQueue()
        queue.push(_event(5.0, 0, 99, [], 99))
        queue.push_many([_event(float(i), 0, i, [], i) for i in range(8)])
        assert len(queue) == 9
        assert [e.seq for e in queue.drain()] == [0, 1, 2, 3, 4, 5, 99, 6, 7]

    def test_pop_group_same_instant_priority(self):
        queue = EventQueue()
        for seq, (t, p) in enumerate([(1.0, 0), (1.0, 0), (1.0, 1), (2.0, 0)]):
            queue.push(_event(t, p, seq, [], seq))
        group = queue.pop_group()
        assert [e.seq for e in group] == [0, 1]
        assert len(queue) == 2

    def test_cancel_popped_event_keeps_live_count(self):
        queue = EventQueue()
        events = [_event(1.0, 0, seq, [], seq) for seq in range(3)]
        for event in events:
            queue.push(event)
        group = queue.pop_group()
        assert len(group) == 3 and len(queue) == 0
        # Cancelling an already-popped member must not touch the count
        # (it no longer occupies the heap).
        queue.cancel(group[1])
        assert len(queue) == 0
        # Re-pushed events are live again, cancelled ones stay out.
        queue.push(group[2])
        assert len(queue) == 1

    def test_peek_key_skips_cancelled(self):
        queue = EventQueue()
        first = _event(1.0, 0, 0, [], 0)
        queue.push(first)
        queue.push(_event(2.0, 1, 1, [], 1))
        queue.cancel(first)
        assert queue.peek_key() == (2.0, 1, 1)
        assert EventQueue().peek_key() is None


class TestSimulatorBatch:
    def test_schedule_batch_equals_sequential_schedule_at(self):
        log_a, log_b = [], []
        sim_a = Simulator()
        for i in range(4):
            sim_a.schedule_at(
                float(i % 2), lambda e, i=i: log_a.append(i),
                priority=EventPriority.GENERIC,
            )
        sim_b = Simulator()
        sim_b.schedule_batch([
            (float(i % 2), lambda e, i=i: log_b.append(i),
             EventPriority.GENERIC, None)
            for i in range(4)
        ])
        assert sim_a.run() == sim_b.run()
        assert log_a == log_b

    def test_schedule_batch_validates_times(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(Exception):
            sim.schedule_batch([(5.0, lambda e: None, 0, None)])
        with pytest.raises(Exception):
            sim.schedule_batch([(float("nan"), lambda e: None, 0, None)])

    def test_group_run_preserves_callback_insertions(self):
        """A callback scheduling a lower-priority same-instant event
        must see it run after the whole group — and a *higher*-sorting
        insertion must pre-empt the rest of the group."""
        log = []
        sim = Simulator()

        def first(event):
            log.append("first")
            # Sorts after the remaining group member (same time and
            # priority, higher seq) — runs third.
            sim.schedule_at(0.0, lambda e: log.append("late"),
                            priority=EventPriority.GENERIC)

        sim.schedule_at(0.0, first, priority=EventPriority.GENERIC)
        sim.schedule_at(0.0, lambda e: log.append("second"),
                        priority=EventPriority.GENERIC)
        sim.run()
        assert log == ["first", "second", "late"]

    def test_group_member_cancelled_mid_group_is_skipped(self):
        log = []
        sim = Simulator()
        holder = {}

        def killer(event):
            log.append("killer")
            sim.cancel(holder["victim"])

        # Killer scheduled first (lower seq) so both land in one
        # popped group with the victim behind it.
        sim.schedule_at(1.0, killer)
        holder["victim"] = sim.schedule_at(1.0, lambda e: log.append("victim"))
        sim.run()
        assert log == ["killer"]


# ----------------------------------------------------------------------
# engine/cluster/ledger transaction pieces
# ----------------------------------------------------------------------


class TestTransactionPieces:
    def test_cluster_version_batch_single_bump(self):
        cluster = Cluster(_spec("thin-global"))
        before = cluster.version
        cluster.begin_version_batch()
        cluster.allocate_nodes(1, [0, 1], 4 * GiB)
        cluster.allocate_pool(1, {"global": 128})
        cluster.allocate_nodes(2, [2], 4 * GiB)
        cluster.end_version_batch()
        assert cluster.version == before + 1
        cluster.release_nodes(1, [0, 1])  # outside a batch: bumps again
        assert cluster.version == before + 2

    def test_ledger_batch_matches_sequential(self):
        sequential, batched = MemoryLedger(), MemoryLedger()
        grants = [(1, 4096, {"global": 64}), (2, 8192, {}), (3, 1024, {"global": 8})]
        for job_id, local, pools in grants:
            sequential.record_grant(5.0, job_id, local, pools)
        batched.record_grant_batch(5.0, grants)
        assert [
            (e.time, e.job_id, e.kind, e.local_total, e.pool_grants)
            for e in sequential
        ] == [
            (e.time, e.job_id, e.kind, e.local_total, e.pool_grants)
            for e in batched
        ]
        with pytest.raises(AllocationError):
            batched.record_grant_batch(6.0, [(1, 10, {})])

    def test_pass_transaction_next_pool_release_incremental(self):
        spec = _spec("thin-global")
        cluster = Cluster(spec)
        sched = build_scheduler(penalty={"kind": "linear", "beta": 0.3})
        running = []

        def running_job(job_id, start, walltime, grants):
            job = Job(job_id=job_id, submit_time=0.0, nodes=1,
                      walltime=walltime, runtime=walltime,
                      mem_per_node=4 * GiB)
            job.start_time = start
            job.dilation = 0.0
            job.pool_grants = grants
            return job

        class _Ctx:
            pass

        ctx = _Ctx()
        ctx.running = running
        txn = PassTransaction()
        assert txn.next_pool_release(ctx, sched) is None
        running.append(running_job(1, 0.0, 1000.0, {"global": 64}))
        running.append(running_job(2, 0.0, 500.0, {}))  # no pool: ignored
        # The cache was primed on the empty list; new arrivals fold in.
        assert txn.next_pool_release(ctx, sched) == 1000.0
        running.append(running_job(3, 0.0, 300.0, {"global": 8}))
        assert txn.next_pool_release(ctx, sched) == 300.0
        # A fresh transaction recomputes from scratch identically.
        assert PassTransaction().next_pool_release(ctx, sched) == 300.0

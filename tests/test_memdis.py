"""Tests for the disaggregated-memory subsystem."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import AllocationError, ConfigurationError
from repro.memdis import (
    ContentionPenalty,
    FixedRatioSplit,
    GlobalPoolAllocator,
    HybridAllocator,
    LinearPenalty,
    LocalFirstSplit,
    MemoryLedger,
    NoPenalty,
    RackLocalAllocator,
    SaturatingPenalty,
    allocator_for,
    local_first_split,
    penalty_from_dict,
)
from repro.units import GiB


class TestSplitPolicies:
    def test_local_first_fits(self):
        split = local_first_split(8 * GiB, 16 * GiB)
        assert split.local == 8 * GiB
        assert split.remote == 0
        assert split.remote_fraction == 0.0

    def test_local_first_overflow(self):
        split = local_first_split(24 * GiB, 16 * GiB)
        assert split.local == 16 * GiB
        assert split.remote == 8 * GiB
        assert split.remote_fraction == pytest.approx(1 / 3)

    def test_local_first_headroom(self):
        split = LocalFirstSplit(headroom=2 * GiB).split(16 * GiB, 16 * GiB)
        assert split.local == 14 * GiB
        assert split.remote == 2 * GiB

    def test_zero_request(self):
        split = local_first_split(0, 16 * GiB)
        assert split.local == 0 and split.remote == 0
        assert split.remote_fraction == 0.0

    def test_zero_capacity_all_remote(self):
        split = local_first_split(4 * GiB, 0)
        assert split.local == 0
        assert split.remote == 4 * GiB
        assert split.remote_fraction == 1.0

    def test_fixed_ratio(self):
        split = FixedRatioSplit(local_ratio=0.25).split(16 * GiB, 64 * GiB)
        assert split.local == 4 * GiB
        assert split.remote == 12 * GiB

    def test_fixed_ratio_capped_by_capacity(self):
        split = FixedRatioSplit(local_ratio=1.0).split(16 * GiB, 8 * GiB)
        assert split.local == 8 * GiB
        assert split.remote == 8 * GiB

    def test_fixed_ratio_validation(self):
        with pytest.raises(ConfigurationError):
            FixedRatioSplit(local_ratio=1.5)
        with pytest.raises(ConfigurationError):
            FixedRatioSplit(local_ratio=0.5, headroom=-1)

    def test_negative_headroom_rejected(self):
        with pytest.raises(ConfigurationError):
            LocalFirstSplit(headroom=-1)

    @given(st.integers(0, 1 << 20), st.integers(0, 1 << 20))
    def test_property_split_conserves_total(self, mem, capacity):
        split = local_first_split(mem, capacity)
        assert split.local + split.remote == mem
        assert split.local <= capacity
        assert split.local >= 0 and split.remote >= 0


class TestAllocators:
    def test_factory(self):
        assert isinstance(allocator_for("global"), GlobalPoolAllocator)
        assert isinstance(allocator_for("rack"), RackLocalAllocator)
        assert isinstance(allocator_for("hybrid"), HybridAllocator)
        with pytest.raises(ConfigurationError):
            allocator_for("quantum")

    def test_zero_remote_trivial(self, pooled_cluster):
        for name in ("global", "rack", "hybrid"):
            assert allocator_for(name).plan(pooled_cluster, [0, 1], 0) == {}

    def test_global_allocator(self, pooled_cluster):
        plan = GlobalPoolAllocator().plan(pooled_cluster, [0, 4], 8 * GiB)
        assert plan == {"global": 16 * GiB}

    def test_global_allocator_exhausted(self, pooled_cluster):
        pooled_cluster.global_pool.allocate(99, 120 * GiB)
        plan = GlobalPoolAllocator().plan(pooled_cluster, [0, 4], 8 * GiB)
        assert plan is None

    def test_global_allocator_no_pool(self, tiny_cluster):
        assert GlobalPoolAllocator().plan(tiny_cluster, [0], 1) is None

    def test_rack_allocator_splits_by_rack(self, pooled_cluster):
        plan = RackLocalAllocator().plan(pooled_cluster, [0, 1, 4], 8 * GiB)
        assert plan == {"rack0": 16 * GiB, "rack1": 8 * GiB}

    def test_rack_allocator_one_rack_short(self, pooled_cluster):
        pooled_cluster.rack(1).pool.allocate(99, 60 * GiB)
        plan = RackLocalAllocator().plan(pooled_cluster, [0, 4], 8 * GiB)
        assert plan is None  # rack1 has only 4 GiB free

    def test_hybrid_prefers_rack(self, pooled_cluster):
        plan = HybridAllocator().plan(pooled_cluster, [0, 1], 8 * GiB)
        assert plan == {"rack0": 16 * GiB}

    def test_hybrid_overflows_to_global(self, pooled_cluster):
        # rack0 pool = 64 GiB; demand 2 nodes × 40 GiB = 80 GiB.
        plan = HybridAllocator().plan(pooled_cluster, [0, 1], 40 * GiB)
        assert plan == {"rack0": 64 * GiB, "global": 16 * GiB}

    def test_hybrid_infeasible_when_both_short(self, pooled_cluster):
        pooled_cluster.global_pool.allocate(99, 127 * GiB)
        plan = HybridAllocator().plan(pooled_cluster, [0, 1], 40 * GiB)
        assert plan is None

    def test_free_override_feasibility(self, pooled_cluster):
        """Reservations evaluate against hypothetical future free space."""
        pooled_cluster.global_pool.allocate(99, 128 * GiB)  # pool now full
        alloc = GlobalPoolAllocator()
        assert alloc.plan(pooled_cluster, [0], 4 * GiB) is None
        # But at shadow time the 128 GiB will be back:
        plan = alloc.plan(
            pooled_cluster, [0], 4 * GiB, free_override={"global": 128 * GiB}
        )
        assert plan == {"global": 4 * GiB}

    def test_plans_do_not_mutate_state(self, pooled_cluster):
        before = pooled_cluster.total_pool_used
        HybridAllocator().plan(pooled_cluster, [0, 1, 4], 30 * GiB)
        assert pooled_cluster.total_pool_used == before

    def test_plan_totals_match_demand(self, pooled_cluster):
        for name in ("global", "rack", "hybrid"):
            plan = allocator_for(name).plan(pooled_cluster, [0, 1, 4, 5], 4 * GiB)
            assert plan is not None
            assert sum(plan.values()) == 4 * 4 * GiB


class TestPenaltyModels:
    def test_no_penalty(self):
        assert NoPenalty().dilation(0.7) == 0.0

    def test_linear(self):
        model = LinearPenalty(beta=0.4)
        assert model.dilation(0.0) == 0.0
        assert model.dilation(0.5) == pytest.approx(0.2)
        assert model.dilation(1.0) == pytest.approx(0.4)

    def test_saturating_below_linear(self):
        lin = LinearPenalty(beta=0.4)
        sat = SaturatingPenalty(beta=0.4, gamma=1.0)
        for f in (0.1, 0.5, 1.0):
            assert sat.dilation(f) < lin.dilation(f)

    def test_contention_idle_matches_linear(self):
        con = ContentionPenalty(beta=0.3, kappa=2.0, threshold=0.5)
        lin = LinearPenalty(beta=0.3)
        assert con.dilation(0.6, pool_pressure=0.2) == pytest.approx(lin.dilation(0.6))

    def test_contention_surcharge(self):
        con = ContentionPenalty(beta=0.3, kappa=2.0, threshold=0.5)
        base = con.dilation(0.6, pool_pressure=0.0)
        loaded = con.dilation(0.6, pool_pressure=1.0)
        assert loaded == pytest.approx(base * (1 + 2.0 * 0.5))

    def test_fraction_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            LinearPenalty().dilation(1.5)
        with pytest.raises(ConfigurationError):
            LinearPenalty().dilation(-0.1)

    def test_negative_params_rejected(self):
        with pytest.raises(ConfigurationError):
            LinearPenalty(beta=-1)
        with pytest.raises(ConfigurationError):
            SaturatingPenalty(beta=-1)
        with pytest.raises(ConfigurationError):
            ContentionPenalty(kappa=-1)
        with pytest.raises(ConfigurationError):
            ContentionPenalty(threshold=2.0)

    def test_from_dict(self):
        assert isinstance(penalty_from_dict(None), LinearPenalty)
        assert isinstance(penalty_from_dict("none"), NoPenalty)
        model = penalty_from_dict({"kind": "linear", "beta": 0.7})
        assert isinstance(model, LinearPenalty)
        assert model.beta == 0.7
        with pytest.raises(ConfigurationError):
            penalty_from_dict({"kind": "warp"})

    def test_to_dict_roundtrip(self):
        model = SaturatingPenalty(beta=0.6, gamma=2.0)
        again = penalty_from_dict(model.to_dict())
        assert isinstance(again, SaturatingPenalty)
        assert again.beta == 0.6 and again.gamma == 2.0

    @given(
        st.sampled_from(["linear", "saturating", "contention"]),
        st.floats(0.0, 1.0),
        st.floats(0.0, 1.0),
    )
    def test_property_monotone_and_zero_at_zero(self, kind, f1, f2):
        model = penalty_from_dict(kind)
        assert model.dilation(0.0) == 0.0
        lo, hi = sorted((f1, f2))
        assert model.dilation(lo) <= model.dilation(hi) + 1e-12

    @given(st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    def test_property_contention_monotone_in_pressure(self, f, pressure):
        model = ContentionPenalty()
        assert model.dilation(f, pressure) >= model.dilation(f, 0.0) - 1e-12


class TestLedger:
    def test_grant_release_cycle(self):
        ledger = MemoryLedger()
        ledger.record_grant(0.0, 1, local_total=100, pool_grants={"global": 50})
        assert ledger.open_jobs == [1]
        assert ledger.outstanding_remote() == 50
        assert ledger.outstanding_local() == 100
        grant = ledger.record_release(10.0, 1)
        assert grant.remote_total == 50
        assert ledger.open_jobs == []
        ledger.verify_conservation()

    def test_double_grant_rejected(self):
        ledger = MemoryLedger()
        ledger.record_grant(0.0, 1, 10, {})
        with pytest.raises(AllocationError):
            ledger.record_grant(1.0, 1, 10, {})

    def test_release_without_grant_rejected(self):
        with pytest.raises(AllocationError):
            MemoryLedger().record_release(0.0, 1)

    def test_release_before_grant_time_rejected(self):
        ledger = MemoryLedger()
        ledger.record_grant(5.0, 1, 10, {})
        with pytest.raises(AllocationError):
            ledger.record_release(4.0, 1)

    def test_conservation_fails_with_open_grant(self):
        ledger = MemoryLedger()
        ledger.record_grant(0.0, 1, 10, {})
        with pytest.raises(AllocationError):
            ledger.verify_conservation()

    def test_occupancy_series(self):
        ledger = MemoryLedger()
        ledger.record_grant(0.0, 1, 0, {"global": 100})
        ledger.record_grant(5.0, 2, 0, {"global": 50})
        ledger.record_release(10.0, 1)
        ledger.record_release(20.0, 2)
        series = ledger.pool_occupancy_series("global")
        assert series == [(0.0, 100), (5.0, 150), (10.0, 50), (20.0, 0)]

    def test_occupancy_series_nets_same_instant(self):
        ledger = MemoryLedger()
        ledger.record_grant(0.0, 1, 0, {"p": 100})
        ledger.record_release(5.0, 1)
        ledger.record_grant(5.0, 2, 0, {"p": 100})
        series = ledger.pool_occupancy_series("p")
        assert series == [(0.0, 100), (5.0, 100)]

    def test_occupancy_ignores_other_pools(self):
        ledger = MemoryLedger()
        ledger.record_grant(0.0, 1, 0, {"rack0": 10})
        assert ledger.pool_occupancy_series("global") == []

    @given(
        st.lists(
            st.tuples(st.integers(1, 10), st.integers(0, 100), st.integers(0, 100)),
            max_size=40,
        )
    )
    def test_property_conservation_random(self, ops):
        ledger = MemoryLedger()
        clock = 0.0
        open_jobs: set[int] = set()
        for job_id, local, remote in ops:
            clock += 1.0
            if job_id in open_jobs:
                ledger.record_release(clock, job_id)
                open_jobs.discard(job_id)
            else:
                ledger.record_grant(
                    clock, job_id, local, {"global": remote} if remote else {}
                )
                open_jobs.add(job_id)
        for job_id in sorted(open_jobs):
            clock += 1.0
            ledger.record_release(clock, job_id)
        ledger.verify_conservation()

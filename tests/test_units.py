"""Tests for unit parsing and formatting."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import UnitError
from repro.units import (
    DAY,
    GiB,
    HOUR,
    MINUTE,
    MiB,
    TiB,
    format_duration,
    format_mem,
    parse_duration,
    parse_mem,
)


class TestParseMem:
    def test_bare_int_is_mib(self):
        assert parse_mem(512) == 512

    def test_bare_float_rounds(self):
        assert parse_mem(512.4) == 512

    def test_bare_string_is_mib(self):
        assert parse_mem("512") == 512

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1MiB", 1),
            ("1MB", 1),
            ("4GiB", 4 * GiB),
            ("4gib", 4 * GiB),
            ("4G", 4 * GiB),
            ("2TiB", 2 * TiB),
            ("0.5GiB", 512),
            ("  8 GiB ", 8 * GiB),
        ],
    )
    def test_suffixes(self, text, expected):
        assert parse_mem(text) == expected

    @pytest.mark.parametrize("bad", ["", "GiB", "4XB", "four GiB", "-4GiB"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(UnitError):
            parse_mem(bad)

    def test_rejects_negative_number(self):
        with pytest.raises(UnitError):
            parse_mem(-1)

    def test_constants_consistent(self):
        assert GiB == 1024 * MiB
        assert TiB == 1024 * GiB


class TestFormatMem:
    def test_mib(self):
        assert format_mem(512) == "512MiB"

    def test_gib(self):
        assert format_mem(4 * GiB) == "4.0GiB"

    def test_tib(self):
        assert format_mem(2 * TiB) == "2.0TiB"

    @given(st.integers(min_value=0, max_value=10 * TiB))
    def test_roundtrip_parses(self, mib):
        # Formatting then parsing stays within 5% (rounding to 1 decimal).
        text = format_mem(mib)
        back = parse_mem(text)
        assert back == pytest.approx(mib, rel=0.06, abs=1)


class TestParseDuration:
    def test_bare_number(self):
        assert parse_duration(90) == 90.0

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("90s", 90.0),
            ("2m", 2 * MINUTE),
            ("2min", 2 * MINUTE),
            ("3h", 3 * HOUR),
            ("1d", DAY),
            ("1.5h", 1.5 * HOUR),
        ],
    )
    def test_suffixes(self, text, expected):
        assert parse_duration(text) == expected

    def test_clock_hms(self):
        assert parse_duration("01:30:00") == 5400.0

    def test_clock_ms(self):
        assert parse_duration("30:15") == 30 * MINUTE + 15

    @pytest.mark.parametrize("bad", ["", "h", "1:2:3:4", "1.5:00", "abc"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(UnitError):
            parse_duration(bad)

    def test_rejects_negative(self):
        with pytest.raises(UnitError):
            parse_duration(-5)


class TestFormatDuration:
    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (45, "45s"),
            (120, "2m"),
            (150, "2m30s"),
            (HOUR, "1h"),
            (5400, "1h30m"),
            (DAY, "1d"),
            (DAY + 2 * HOUR, "1d02h"),
        ],
    )
    def test_rendering(self, seconds, expected):
        assert format_duration(seconds) == expected

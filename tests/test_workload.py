"""Tests for the workload substrate: jobs, distributions, generators,
SWF round-trips, reference mixes, and trace filters."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, TraceFormatError
from repro.sim import RandomStreams
from repro.units import GiB, HOUR
from repro.workload import (
    BoundedPareto,
    Choice,
    Exponential,
    Job,
    JobState,
    LogNormal,
    SyntheticWorkload,
    Weibull,
    WorkloadParams,
    cap_memory,
    filter_jobs,
    jobs_from_swf_text,
    jobs_to_swf_text,
    reference_workload,
    scale_load,
    shift_submit_times,
    truncate_jobs,
)
from repro.workload.models import Constant, Uniform, distribution_from_dict
from repro.workload.reference import generate_reference_jobs
from repro.workload.swf import SWFFields
from repro.workload.synthetic import MemoryClass, power_of_two_nodes

from .conftest import make_job


class TestJob:
    def test_defaults_and_derived(self):
        job = make_job(nodes=4, mem=8 * GiB, runtime=100.0, walltime=400.0)
        assert job.total_mem == 32 * GiB
        assert job.node_seconds == 1600.0
        assert job.estimate_accuracy == 0.25
        assert job.state is JobState.PENDING

    def test_used_defaults_to_requested(self):
        job = Job(job_id=1, submit_time=0, nodes=1, walltime=10, runtime=5,
                  mem_per_node=100)
        assert job.mem_used_per_node == 100

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"nodes": 0},
            {"submit": -1.0},
            {"walltime": 0.0},
            {"runtime": 0.0},
            {"mem": -5},
        ],
    )
    def test_invalid_requests_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            make_job(**kwargs)

    def test_used_above_requested_rejected(self):
        with pytest.raises(ConfigurationError):
            make_job(mem=100, mem_used=200)

    def test_execution_metrics(self):
        job = make_job(submit=10.0, runtime=100.0, walltime=200.0)
        job.start_time = 50.0
        job.end_time = 150.0
        assert job.wait_time == 40.0
        assert job.response_time == 140.0
        assert job.actual_runtime == 100.0
        assert job.bounded_slowdown() == 1.4

    def test_bounded_slowdown_floor(self):
        job = make_job(submit=0.0, runtime=1.0, walltime=10.0)
        job.start_time = 0.0
        job.end_time = 1.0
        # Short job: bounded by tau=10 in denominator and floor 1.
        assert job.bounded_slowdown() == 1.0

    def test_dilation_properties(self):
        job = make_job(runtime=100.0, walltime=200.0, mem=10 * GiB)
        job.remote_per_node = 5 * GiB
        job.dilation = 0.2
        assert job.remote_fraction == 0.5
        assert job.dilated_runtime == pytest.approx(120.0)
        assert job.dilated_walltime == pytest.approx(240.0)

    def test_metrics_before_run_raise(self):
        job = make_job()
        with pytest.raises(ValueError):
            _ = job.wait_time
        with pytest.raises(ValueError):
            _ = job.response_time

    def test_copy_request_resets_execution(self):
        job = make_job()
        job.state = JobState.COMPLETED
        job.start_time = 1.0
        job.end_time = 2.0
        job.assigned_nodes = [1, 2]
        copy = job.copy_request()
        assert copy.state is JobState.PENDING
        assert copy.start_time is None
        assert copy.assigned_nodes == []
        assert copy.mem_per_node == job.mem_per_node


class TestDistributions:
    def setup_method(self):
        self.rng = np.random.default_rng(0)

    def test_constant(self):
        assert Constant(5.0).sample(self.rng) == 5.0
        assert Constant(5.0).mean() == 5.0

    def test_uniform_bounds_and_mean(self):
        dist = Uniform(2.0, 4.0)
        samples = [dist.sample(self.rng) for _ in range(500)]
        assert all(2.0 <= s <= 4.0 for s in samples)
        assert np.mean(samples) == pytest.approx(3.0, rel=0.05)
        assert dist.mean() == 3.0

    def test_uniform_inverted_rejected(self):
        with pytest.raises(ConfigurationError):
            Uniform(4.0, 2.0)

    def test_exponential_mean(self):
        dist = Exponential(100.0)
        samples = [dist.sample(self.rng) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(100.0, rel=0.1)

    def test_weibull_mean_analytic(self):
        dist = Weibull(shape=0.7, scale=50.0)
        samples = [dist.sample(self.rng) for _ in range(8000)]
        assert np.mean(samples) == pytest.approx(dist.mean(), rel=0.1)

    def test_lognormal_truncation(self):
        dist = LogNormal(mu=5.0, sigma=2.0, low=60.0, high=1000.0)
        samples = [dist.sample(self.rng) for _ in range(500)]
        assert all(60.0 <= s <= 1000.0 for s in samples)

    def test_bounded_pareto_bounds(self):
        dist = BoundedPareto(alpha=1.5, low=1.0, high=100.0)
        samples = [dist.sample(self.rng) for _ in range(2000)]
        assert all(1.0 <= s <= 100.0 for s in samples)
        assert np.mean(samples) == pytest.approx(dist.mean(), rel=0.15)

    def test_bounded_pareto_alpha_one_mean(self):
        dist = BoundedPareto(alpha=1.0, low=1.0, high=10.0)
        samples = [dist.sample(self.rng) for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(dist.mean(), rel=0.1)

    def test_choice_weights(self):
        dist = Choice(values=[1.0, 2.0], weights=[3.0, 1.0])
        samples = [dist.sample(self.rng) for _ in range(2000)]
        ones = sum(1 for s in samples if s == 1.0)
        assert ones / len(samples) == pytest.approx(0.75, abs=0.05)
        assert dist.mean() == pytest.approx(1.25)

    def test_choice_validation(self):
        with pytest.raises(ConfigurationError):
            Choice(values=[])
        with pytest.raises(ConfigurationError):
            Choice(values=[1.0], weights=[1.0, 2.0])
        with pytest.raises(ConfigurationError):
            Choice(values=[1.0, 2.0], weights=[0.0, 0.0])

    def test_dict_roundtrip(self):
        for dist in [
            Constant(3.0),
            Uniform(1.0, 2.0),
            Exponential(10.0),
            Weibull(0.8, 30.0),
            LogNormal(2.0, 0.5),
            BoundedPareto(1.2, 1.0, 50.0),
            Choice(values=[1.0, 2.0], weights=[1.0, 3.0]),
        ]:
            rebuilt = distribution_from_dict(dist.to_dict())
            assert type(rebuilt) is type(dist)
            assert rebuilt.mean() == pytest.approx(dist.mean())

    def test_from_dict_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            distribution_from_dict({"kind": "cauchy"})


class TestPowerOfTwoNodes:
    def test_values_are_powers_of_two(self):
        dist = power_of_two_nodes(64)
        assert dist.values == [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0]

    def test_weights_normalized(self):
        dist = power_of_two_nodes(64)
        assert sum(dist.weights) == pytest.approx(1.0)

    def test_small_jobs_dominate(self):
        rng = np.random.default_rng(0)
        dist = power_of_two_nodes(64)
        samples = [dist.sample(rng) for _ in range(2000)]
        assert np.median(samples) <= 4

    def test_max_one_node(self):
        dist = power_of_two_nodes(1)
        assert dist.values == [1.0]


class TestSyntheticWorkload:
    def make_params(self, **overrides):
        defaults = dict(
            num_jobs=200,
            interarrival=Exponential(30.0),
            nodes=power_of_two_nodes(16),
            runtime=LogNormal(mu=7.0, sigma=1.0, low=60.0, high=12 * HOUR),
            max_nodes=16,
            max_mem_per_node=64 * GiB,
        )
        defaults.update(overrides)
        return WorkloadParams(**defaults)

    def test_deterministic_given_seed(self):
        params = self.make_params()
        jobs_a = SyntheticWorkload(params).generate(RandomStreams(5))
        jobs_b = SyntheticWorkload(params).generate(RandomStreams(5))
        assert [(j.submit_time, j.nodes, j.runtime, j.mem_per_node) for j in jobs_a] == [
            (j.submit_time, j.nodes, j.runtime, j.mem_per_node) for j in jobs_b
        ]

    def test_different_seeds_differ(self):
        params = self.make_params()
        jobs_a = SyntheticWorkload(params).generate(RandomStreams(1))
        jobs_b = SyntheticWorkload(params).generate(RandomStreams(2))
        assert [j.runtime for j in jobs_a] != [j.runtime for j in jobs_b]

    def test_constraints_hold(self):
        jobs = SyntheticWorkload(self.make_params()).generate(RandomStreams(0))
        assert len(jobs) == 200
        for job in jobs:
            assert 1 <= job.nodes <= 16
            assert job.mem_per_node <= 64 * GiB
            assert job.mem_used_per_node <= job.mem_per_node
            assert job.runtime <= job.walltime
            assert job.submit_time >= 0

    def test_submit_times_increase(self):
        jobs = SyntheticWorkload(self.make_params()).generate(RandomStreams(0))
        times = [j.submit_time for j in jobs]
        assert times == sorted(times)

    def test_arrival_rate_close_to_spec(self):
        params = self.make_params(num_jobs=2000)
        jobs = SyntheticWorkload(params).generate(RandomStreams(3))
        gaps = np.diff([j.submit_time for j in jobs])
        assert np.mean(gaps) == pytest.approx(30.0, rel=0.1)

    def test_exact_estimates_present(self):
        params = self.make_params(num_jobs=1000, exact_estimate_prob=0.5)
        jobs = SyntheticWorkload(params).generate(RandomStreams(0))
        exact = sum(1 for j in jobs if j.walltime == j.runtime)
        assert exact / len(jobs) > 0.3  # 0.5 minus walltime-cap effects

    def test_memory_class_tags(self):
        jobs = SyntheticWorkload(self.make_params(num_jobs=500)).generate(
            RandomStreams(0)
        )
        tags = {j.tag for j in jobs}
        assert tags == {"compute", "data"}

    def test_calibrated_load(self):
        params = self.make_params(num_jobs=3000).calibrated_for_load(
            num_cluster_nodes=64, target_load=0.8
        )
        workload = SyntheticWorkload(params)
        assert workload.offered_load(64) == pytest.approx(0.8, rel=1e-9)
        # Empirical check: realized node-seconds over span ≈ target.
        jobs = workload.generate(RandomStreams(1))
        span = jobs[-1].submit_time - jobs[0].submit_time
        used = sum(j.nodes * j.runtime for j in jobs)
        assert used / (64 * span) == pytest.approx(0.8, rel=0.25)

    def test_validation_errors(self):
        with pytest.raises(ConfigurationError):
            WorkloadParams(num_jobs=0).validate()
        with pytest.raises(ConfigurationError):
            WorkloadParams(memory_classes=[]).validate()
        with pytest.raises(ConfigurationError):
            WorkloadParams(exact_estimate_prob=1.5).validate()
        with pytest.raises(ConfigurationError):
            WorkloadParams(
                memory_classes=[MemoryClass("x", 0.0, Constant(100))]
            ).validate()


SWF_SAMPLE = """\
; Version: 2
; Computer: Test Machine
; MaxNodes: 64
1 0 10 3600 16 -1 2048 16 7200 4096 1 3 1 -1 -1 -1 -1 -1
2 100 -1 1800 -1 -1 -1 8 3600 -1 1 4 1 -1 -1 -1 -1 -1
3 200 -1 60 4 -1 -1 4 120 8192 0 5 2 -1 -1 -1 -1 -1
4 300 -1 -1 4 -1 -1 4 120 -1 5 5 2 -1 -1 -1 -1 -1
"""


class TestSWF:
    def test_parse_basic_fields(self):
        jobs, header = jobs_from_swf_text(SWF_SAMPLE)
        assert header["Computer"] == "Test Machine"
        assert header["MaxNodes"] == "64"
        # Job 3 is failed (status 0, dropped by default); job 4 is
        # cancelled/no-runtime (dropped).
        assert [j.job_id for j in jobs] == [1, 2]
        first = jobs[0]
        assert first.submit_time == 0.0
        assert first.runtime == 3600.0
        assert first.walltime == 7200.0
        assert first.nodes == 16
        assert first.mem_per_node == 4  # 4096 KB -> 4 MiB
        assert first.mem_used_per_node == 2
        assert first.user == "user3"

    def test_keep_failed(self):
        jobs, _ = jobs_from_swf_text(SWF_SAMPLE, fields=SWFFields(keep_failed=True))
        assert [j.job_id for j in jobs] == [1, 2, 3]

    def test_cores_per_node_conversion(self):
        jobs, _ = jobs_from_swf_text(SWF_SAMPLE, fields=SWFFields(cores_per_node=8))
        assert jobs[0].nodes == 2  # 16 procs / 8 per node
        assert jobs[0].mem_per_node == 32  # 4096 KB * 8 / 1024

    def test_memory_synthesis(self):
        jobs, _ = jobs_from_swf_text(
            SWF_SAMPLE,
            mem_synth=Constant(1024.0),
            usage_ratio_synth=Constant(0.5),
            streams=RandomStreams(0),
        )
        job2 = next(j for j in jobs if j.job_id == 2)
        assert job2.mem_per_node == 1024
        assert job2.mem_used_per_node == 512

    def test_runtime_clamped_to_walltime(self):
        text = "1 0 -1 7200 4 -1 -1 4 3600 -1 1 1 1 -1 -1 -1 -1 -1\n"
        jobs, _ = jobs_from_swf_text(text)
        assert jobs[0].runtime == 3600.0

    def test_non_numeric_rejected(self):
        with pytest.raises(TraceFormatError):
            jobs_from_swf_text("1 0 x 3600 4 -1 -1 4 3600 -1 1 1 1 -1 -1 -1 -1 -1\n")

    def test_short_lines_padded(self):
        jobs, _ = jobs_from_swf_text("1 0 -1 600 4 -1 -1 4 1200 -1 1\n")
        assert jobs[0].nodes == 4

    def test_roundtrip_preserves_requests(self):
        jobs, _ = jobs_from_swf_text(SWF_SAMPLE)
        text = jobs_to_swf_text(jobs, header={"Version": "2"})
        again, header = jobs_from_swf_text(text)
        assert header["Version"] == "2"
        assert len(again) == len(jobs)
        for a, b in zip(jobs, again):
            assert a.job_id == b.job_id
            assert a.nodes == b.nodes
            assert a.mem_per_node == b.mem_per_node
            assert a.submit_time == pytest.approx(b.submit_time, abs=1.0)
            assert a.walltime == pytest.approx(b.walltime, abs=1.0)

    @given(
        st.lists(
            st.tuples(
                st.floats(0, 1e6, allow_nan=False),  # submit
                st.integers(1, 512),  # nodes
                st.integers(60, 86400),  # runtime
                st.floats(1.0, 4.0),  # inflation
                st.integers(1, 512 * 1024),  # mem MiB
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip(self, rows):
        jobs = [
            Job(
                job_id=i + 1,
                submit_time=float(int(submit)),
                nodes=nodes,
                walltime=float(int(runtime * inflation)) + 1.0,
                runtime=float(runtime),
                mem_per_node=mem,
            )
            for i, (submit, nodes, runtime, inflation, mem) in enumerate(rows)
        ]
        text = jobs_to_swf_text(jobs)
        again, _ = jobs_from_swf_text(text)
        assert len(again) == len(jobs)
        by_id = {j.job_id: j for j in again}
        for job in jobs:
            back = by_id[job.job_id]
            assert back.nodes == job.nodes
            assert back.mem_per_node == job.mem_per_node
            assert back.runtime == pytest.approx(job.runtime, abs=1.0)

    def test_read_write_files(self, tmp_path):
        from repro.workload import read_swf, write_swf

        jobs, _ = jobs_from_swf_text(SWF_SAMPLE)
        path = tmp_path / "trace.swf"
        write_swf(jobs, path, header={"Computer": "X"})
        again, header = read_swf(path)
        assert header["Computer"] == "X"
        assert len(again) == len(jobs)


class TestReferenceWorkloads:
    def test_all_mixes_generate(self):
        for name in ("W-COMP", "W-MIX", "W-DATA"):
            jobs = generate_reference_jobs(name, seed=1, num_jobs=100,
                                           cluster_nodes=64)
            assert len(jobs) == 100
            assert all(j.nodes <= 64 for j in jobs)

    def test_unknown_mix_rejected(self):
        with pytest.raises(ConfigurationError):
            reference_workload("W-NOPE")

    def test_memory_intensity_ordering(self):
        """W-COMP < W-MIX < W-DATA in mean requested memory."""
        means = {}
        for name in ("W-COMP", "W-MIX", "W-DATA"):
            jobs = generate_reference_jobs(name, seed=7, num_jobs=800,
                                           cluster_nodes=64)
            means[name] = np.mean([j.mem_per_node for j in jobs])
        assert means["W-COMP"] < means["W-MIX"] < means["W-DATA"]

    def test_memory_capped_at_fat_node(self):
        jobs = generate_reference_jobs(
            "W-DATA", seed=3, num_jobs=500, cluster_nodes=64,
            max_mem_per_node=512 * GiB,
        )
        assert max(j.mem_per_node for j in jobs) <= 512 * GiB


class TestFilters:
    def make_jobs(self):
        return [
            make_job(job_id=1, submit=0.0, mem=10 * GiB),
            make_job(job_id=2, submit=100.0, mem=20 * GiB),
            make_job(job_id=3, submit=300.0, mem=30 * GiB),
        ]

    def test_scale_load_compresses_gaps(self):
        scaled = scale_load(self.make_jobs(), 2.0)
        assert [j.submit_time for j in scaled] == [0.0, 50.0, 150.0]

    def test_scale_load_preserves_first_arrival(self):
        jobs = shift_submit_times(self.make_jobs(), 1000.0)
        scaled = scale_load(jobs, 2.0)
        assert scaled[0].submit_time == 1000.0

    def test_scale_load_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            scale_load(self.make_jobs(), 0.0)

    def test_truncate(self):
        assert [j.job_id for j in truncate_jobs(self.make_jobs(), 2)] == [1, 2]

    def test_filter(self):
        kept = filter_jobs(self.make_jobs(), lambda j: j.mem_per_node > 15 * GiB)
        assert [j.job_id for j in kept] == [2, 3]

    def test_shift_clamps_at_zero(self):
        shifted = shift_submit_times(self.make_jobs(), -50.0)
        assert [j.submit_time for j in shifted] == [0.0, 50.0, 250.0]

    def test_cap_memory(self):
        capped = cap_memory(self.make_jobs(), 15 * GiB)
        assert [j.mem_per_node for j in capped] == [10 * GiB, 15 * GiB, 15 * GiB]
        assert all(j.mem_used_per_node <= j.mem_per_node for j in capped)

    def test_filters_return_fresh_pending_copies(self):
        jobs = self.make_jobs()
        jobs[0].state = JobState.COMPLETED
        out = truncate_jobs(jobs, 3)
        assert all(j.state is JobState.PENDING for j in out)
        assert out[0] is not jobs[0]

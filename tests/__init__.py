"""Test package marker.

Making ``tests/`` a package lets the test modules' relative
``from .conftest import make_job`` imports resolve under pytest's
default import mode.
"""

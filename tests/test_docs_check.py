"""The docs-check tool (tools/check_docs.py) and the repo's own docs.

The CI docs-check step runs the script directly; these tests keep it
honest locally — the repo's documentation must pass, and the checker
must actually detect the two violation classes it claims to.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SCRIPT = REPO / "tools" / "check_docs.py"


def _load():
    spec = importlib.util.spec_from_file_location("check_docs", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestRepoDocs:
    def test_repo_documentation_is_clean(self):
        result = subprocess.run(
            [sys.executable, str(SCRIPT)], capture_output=True, text=True
        )
        assert result.returncode == 0, result.stderr

    def test_architecture_and_perf_docs_linked_from_readme(self):
        readme = (REPO / "README.md").read_text()
        assert "docs/ARCHITECTURE.md" in readme
        assert "docs/PERF.md" in readme


class TestChecker:
    def test_detects_broken_link_and_anchor(self, monkeypatch, tmp_path):
        module = _load()
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "REAL.md").write_text("# Real Heading\n")
        (tmp_path / "README.md").write_text(
            "[gone](missing.md) [bad](docs/REAL.md#nope) "
            "[ok](docs/REAL.md#real-heading) [ext](https://example.com)\n"
        )
        monkeypatch.setattr(module, "REPO", tmp_path)
        errors = module.check_links()
        assert any("missing.md" in e for e in errors)
        assert any("#nope" in e for e in errors)
        assert len(errors) == 2

    def test_fragment_only_links_check_same_file(self, monkeypatch, tmp_path):
        module = _load()
        (tmp_path / "README.md").write_text(
            "# Top Section\n[good](#top-section) [bad](#absent)\n"
        )
        monkeypatch.setattr(module, "REPO", tmp_path)
        errors = module.check_links()
        assert errors == ["README.md: missing anchor -> #absent"]

    def test_detects_missing_module_docstring(self, monkeypatch, tmp_path):
        module = _load()
        tree = tmp_path / "src" / "repro" / "sched"
        tree.mkdir(parents=True)
        (tree / "documented.py").write_text('"""Has one."""\n')
        (tree / "bare.py").write_text("x = 1\n")
        monkeypatch.setattr(module, "REPO", tmp_path)
        errors = module.check_module_docstrings()
        assert errors == ["src/repro/sched/bare.py: missing module docstring"]

    def test_slug_matches_github_convention(self):
        module = _load()
        assert module._slug("Testing strategy") == "testing-strategy"
        assert module._slug("Sweep throughput: `--workers N`") == (
            "sweep-throughput---workers-n"
        )

"""Tests for the scenario-sweep runner subsystem (repro.runner)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.errors import ConfigurationError
from repro.runner import (
    CACHE_VERSION,
    ResultCache,
    Scenario,
    ScenarioGrid,
    SweepRunner,
    aggregate_rows,
    build_cluster_spec,
    records_to_rows,
    run_scenario,
    series_from_rows,
    summary_from_record,
)
from repro.units import GiB


def tiny_base(num_jobs: int = 40, seed: int = 7) -> dict:
    """A scenario document small enough to simulate in milliseconds."""
    return {
        "workload": {"reference": "W-MIX", "num_jobs": num_jobs,
                     "seed": seed, "load": 0.9},
        "cluster": {"kind": "thin", "num_nodes": 16, "nodes_per_rack": 8,
                    "local_mem": "128GiB", "fat_local_mem": "512GiB",
                    "pool_fraction": 0.5},
        "scheduler": {"backfill": "easy",
                      "penalty": {"kind": "linear", "beta": 0.3}},
        "class_local_mem": 512 * GiB,
    }


def tiny_grid(**axes) -> ScenarioGrid:
    return ScenarioGrid(
        name="tiny",
        base=tiny_base(),
        axes=axes or {"cluster.pool_fraction": [0.25, 0.5],
                      "scheduler.penalty.beta": [0.1, 0.3]},
    )


# ----------------------------------------------------------------------
# grid expansion
# ----------------------------------------------------------------------
class TestGridExpansion:
    def test_cartesian_product_count(self):
        grid = tiny_grid(**{
            "workload.reference": ["W-MIX", "W-DATA"],
            "cluster.pool_fraction": [0.25, 0.5, 1.0],
            "scheduler.penalty.beta": [0.1, 0.3],
        })
        assert grid.size == 12
        scenarios = grid.scenarios()
        assert len(scenarios) == 12
        assert len({s.name for s in scenarios}) == 12

    def test_dotted_path_overrides_applied(self):
        grid = tiny_grid(**{"scheduler.penalty.beta": [0.1, 0.9]})
        betas = [s.scheduler["penalty"]["beta"] for s in grid.scenarios()]
        assert betas == [0.1, 0.9]
        # The base document is never mutated by expansion.
        assert grid.base["scheduler"]["penalty"]["beta"] == 0.3

    def test_set_point_axis_moves_linked_parameters(self):
        grid = tiny_grid(reach=[
            {"label": "global", "set": {"cluster.reach": "global",
                                        "scheduler.placement": "first_fit"}},
            {"label": "rack", "set": {"cluster.reach": "rack",
                                      "scheduler.placement": "rack_pack"}},
        ])
        scenarios = grid.scenarios()
        assert [s.name for s in scenarios] == ["global", "rack"]
        assert scenarios[1].cluster["reach"] == "rack"
        assert scenarios[1].scheduler["placement"] == "rack_pack"
        assert scenarios[1].coords["reach"] == "rack"

    def test_labelled_value_points(self):
        grid = tiny_grid(**{"cluster.pool_fraction": [
            {"label": "quarter", "value": 0.25},
            {"label": "full", "value": 1.0},
        ]})
        scenarios = grid.scenarios()
        assert [s.name for s in scenarios] == ["quarter", "full"]
        assert scenarios[0].cluster["pool_fraction"] == 0.25
        # Tidy coordinate keeps the raw value, not the label.
        assert scenarios[0].coords["cluster.pool_fraction"] == 0.25

    def test_axis_conflicting_with_non_mapping_base_rejected(self):
        base = tiny_base()
        base["scheduler"]["penalty"] = "step"  # string form, not a dict
        grid = ScenarioGrid(base=base,
                            axes={"scheduler.penalty.beta": [0.1, 0.3]})
        with pytest.raises(ConfigurationError):
            grid.scenarios()

    def test_no_axes_yields_single_scenario(self):
        grid = ScenarioGrid(name="single", base=tiny_base(), axes={})
        assert grid.size == 1
        assert len(grid.scenarios()) == 1

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioGrid(base=tiny_base(), axes={"workload.seed": []})

    def test_grid_json_roundtrip(self, tmp_path):
        grid = tiny_grid()
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(grid.to_dict()))
        loaded = ScenarioGrid.from_file(path)
        assert [s.key() for s in loaded.scenarios()] \
            == [s.key() for s in grid.scenarios()]


# ----------------------------------------------------------------------
# scenario identity & seeding
# ----------------------------------------------------------------------
class TestScenarioKey:
    def test_key_stable_and_name_insensitive(self):
        a = Scenario.from_dict(tiny_base())
        b = Scenario.from_dict(tiny_base())
        b.name = "renamed"
        b.coords = {"axis": "value"}
        assert a.key() == b.key()

    def test_key_tracks_physics(self):
        a = Scenario.from_dict(tiny_base())
        changed = tiny_base()
        changed["scheduler"]["penalty"]["beta"] = 0.9
        b = Scenario.from_dict(changed)
        assert a.key() != b.key()

    def test_auto_seed_deterministic_and_distinct(self):
        base = tiny_base()
        base["workload"]["seed"] = "auto"
        grid = ScenarioGrid(base=base,
                            axes={"cluster.pool_fraction": [0.25, 0.5]})
        first = [s.effective_seed() for s in grid.scenarios()]
        second = [s.effective_seed() for s in grid.scenarios()]
        assert first == second
        assert first[0] != first[1]

    def test_class_local_mem_accepts_string_form(self):
        doc = tiny_base()
        doc["class_local_mem"] = "512GiB"
        scenario = Scenario.from_dict(doc)
        assert scenario.class_local_mem == 512 * GiB
        # Both spellings hash identically, so neither busts the cache.
        assert scenario.key() == Scenario.from_dict(tiny_base()).key()
        record = run_scenario(scenario)
        assert record["summary"]["by_class"]

    def test_build_cluster_spec_forms(self):
        fat = build_cluster_spec({"kind": "fat", "num_nodes": 8,
                                  "local_mem": "64GiB"})
        assert fat.num_nodes == 8 and fat.pool.disaggregated is False
        thin = build_cluster_spec(tiny_base()["cluster"])
        assert thin.pool.global_pool > 0
        raw = build_cluster_spec({"spec": {"num_nodes": 4,
                                           "nodes_per_rack": 2}})
        assert raw.num_nodes == 4
        with pytest.raises(ConfigurationError):
            build_cluster_spec({"kind": "mystery"})


# ----------------------------------------------------------------------
# sweep execution: cache + parallel determinism
# ----------------------------------------------------------------------
class TestSweepRunner:
    def test_cache_misses_then_hits(self, tmp_path):
        grid = tiny_grid()
        runner = SweepRunner(workers=1, cache_dir=tmp_path / "cache")
        first = runner.run(grid)
        assert (first.executed, first.cached) == (4, 0)
        second = SweepRunner(workers=1, cache_dir=tmp_path / "cache").run(grid)
        assert (second.executed, second.cached) == (0, 4)
        assert json.dumps(first.records, sort_keys=True) \
            == json.dumps(second.records, sort_keys=True)

    def test_physics_change_invalidates_only_changed_cells(self, tmp_path):
        cache_dir = tmp_path / "cache"
        SweepRunner(workers=1, cache_dir=cache_dir).run(
            tiny_grid(**{"cluster.pool_fraction": [0.25, 0.5]})
        )
        report = SweepRunner(workers=1, cache_dir=cache_dir).run(
            tiny_grid(**{"cluster.pool_fraction": [0.25, 1.0]})
        )
        assert (report.executed, report.cached) == (1, 1)

    def test_relabelled_cache_hit_refreshes_summary_label(self, tmp_path):
        cache_dir = tmp_path / "cache"
        axis = {"cluster.pool_fraction": [{"label": "old", "value": 0.25}]}
        SweepRunner(workers=1, cache_dir=cache_dir).run(tiny_grid(**axis))
        renamed = tiny_grid(**{
            "cluster.pool_fraction": [{"label": "new", "value": 0.25}],
        })
        report = SweepRunner(workers=1, cache_dir=cache_dir).run(renamed)
        assert (report.executed, report.cached) == (0, 1)
        assert report.records[0]["name"] == "new"
        assert report.summaries()[0].label == "new"

    def test_parallel_equals_serial(self, tmp_path):
        grid = tiny_grid()
        serial = SweepRunner(workers=1).run(grid)
        parallel = SweepRunner(workers=2).run(grid)
        assert serial.records == parallel.records
        assert parallel.executed == 4

    def test_records_in_grid_order(self):
        grid = tiny_grid()
        names = [s.name for s in grid.scenarios()]
        report = SweepRunner(workers=2).run(grid)
        assert [r["name"] for r in report.records] == names

    def test_progress_reported_per_cell(self):
        lines = []
        SweepRunner(workers=1, progress=lines.append).run(
            tiny_grid(**{"cluster.pool_fraction": [0.25, 0.5]})
        )
        assert len(lines) == 2
        assert lines[0].startswith("[1/2]")

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(workers=0)

    def test_cache_version_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("abc", {"name": "x"})
        assert cache.get("abc") == {"name": "x"}
        entry = json.loads((tmp_path / "abc.json").read_text())
        entry["version"] = CACHE_VERSION + 1
        (tmp_path / "abc.json").write_text(json.dumps(entry))
        assert cache.get("abc") is None


# ----------------------------------------------------------------------
# aggregation
# ----------------------------------------------------------------------
class TestAggregation:
    @pytest.fixture(scope="class")
    def report(self):
        return SweepRunner(workers=1).run(tiny_grid())

    def test_rows_carry_coords_and_metrics(self, report):
        rows = records_to_rows(report.records)
        assert len(rows) == 4
        for row in rows:
            assert {"scenario", "cluster.pool_fraction",
                    "scheduler.penalty.beta", "wait_mean",
                    "node_util"} <= set(row)

    def test_summary_rehydration_matches_direct_run(self, report):
        scenario = tiny_grid().scenarios()[0]
        direct = run_scenario(scenario)
        rehydrated = summary_from_record(report.records[0])
        assert rehydrated.wait == direct["summary"]["wait"]
        assert rehydrated.label == scenario.name

    def test_series_extraction_filters_and_sorts(self, report):
        rows = records_to_rows(report.records)
        xs, ys = series_from_rows(
            rows, "cluster.pool_fraction", "wait_mean",
            where={"scheduler.penalty.beta": 0.3},
        )
        assert xs == [0.25, 0.5]
        assert all(isinstance(y, float) for y in ys)

    def test_series_rejects_duplicate_x(self, report):
        rows = records_to_rows(report.records)
        with pytest.raises(ValueError):
            series_from_rows(rows, "cluster.pool_fraction", "wait_mean")

    def test_aggregate_rows_collapses_replicates(self, report):
        rows = records_to_rows(report.records)
        aggregated = aggregate_rows(
            rows, by=["cluster.pool_fraction"],
            metrics=["wait_mean"], sums=["rejected"],
        )
        assert [row["cluster.pool_fraction"] for row in aggregated] \
            == [0.25, 0.5]
        for row in aggregated:
            assert row["replicates"] == 2
            assert row["wait_mean_ci95"] >= 0.0


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestSweepCLI:
    def test_sweep_cli_grid_file(self, tmp_path, capsys):
        grid_path = tmp_path / "grid.json"
        grid_path.write_text(json.dumps(tiny_grid().to_dict()))
        out_path = tmp_path / "results.json"
        code = cli_main([
            "sweep", "--grid", str(grid_path),
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(out_path), "--quiet",
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "4 executed / 0 cached" in printed
        payload = json.loads(out_path.read_text())
        assert len(payload["records"]) == 4
        assert payload["executed"] == 4
        # Second invocation: everything served from the cache.
        code = cli_main([
            "sweep", "--grid", str(grid_path),
            "--cache-dir", str(tmp_path / "cache"), "--quiet",
        ])
        assert code == 0
        assert "0 executed / 4 cached" in capsys.readouterr().out

    def test_demo_grid_has_at_least_12_cells(self):
        from repro.cli import demo_grid

        assert demo_grid().size >= 12

"""Equivalence suite: optimized profile vs oracle, schedules vs goldens.

The sweep-based :class:`AvailabilityProfile` rewrite and the backfill
hot-path optimizations are pinned by three layers of evidence:

* query equivalence — breakpoints / free_at / window_free /
  earliest_start agree with the brute-force :class:`OracleProfile`
  (``_oracles.py``) on randomized clusters, running sets, and
  reservation patterns, across every placement policy and reach;
* incremental-mutation equivalence — add/remove_reservation and
  apply_start patch the cached sweep to exactly the state a fresh
  rebuild (and the oracle) would produce;
* end-to-end anchoring — full simulations over 200+ randomized
  workload × cluster × policy combinations must match the pinned
  golden digests in ``tests/golden/`` (see ``_golden.py``), which
  were baselined from runs verified against the original
  pre-optimization implementation.
"""

from __future__ import annotations

import random
import zlib

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec, PoolSpec
from repro.engine.simulation import SchedulerSimulation
from repro.memdis import GlobalPoolAllocator, HybridAllocator, RackLocalAllocator
from repro.sched import AvailabilityProfile, Reservation
from repro.sched.base import build_scheduler
from repro.sched.placement import placement_for
from repro.units import GiB, HOUR
from repro.workload import Job

from ._golden import assert_matches_golden
from ._oracles import OracleProfile

GOLDEN = "profile_equivalence"

# ----------------------------------------------------------------------
# randomized state builders
# ----------------------------------------------------------------------


def _random_cluster(rng: random.Random) -> Cluster:
    num_nodes = rng.choice((8, 12, 16))
    nodes_per_rack = rng.choice((4, 8))
    kind = rng.choice(("global", "rack", "hybrid", "none"))
    pool = PoolSpec()
    if kind == "global":
        pool = PoolSpec(global_pool=rng.choice((64, 128)) * GiB)
    elif kind == "rack":
        pool = PoolSpec(rack_pool=rng.choice((32, 64)) * GiB)
    elif kind == "hybrid":
        pool = PoolSpec(
            rack_pool=rng.choice((32, 64)) * GiB,
            global_pool=rng.choice((64, 128)) * GiB,
        )
    spec = ClusterSpec(
        name=f"rand-{kind}",
        num_nodes=num_nodes,
        nodes_per_rack=nodes_per_rack,
        node=NodeSpec(cores=8, local_mem=16 * GiB),
        pool=pool,
    )
    return Cluster(spec)


def _random_running(rng: random.Random, cluster: Cluster, now: float):
    """Occupy part of the machine with consistent running jobs."""
    running = []
    job_id = 1000
    free = list(cluster.sorted_free_ids())
    rng.shuffle(free)
    while free and len(running) < rng.randint(0, 6):
        take = min(len(free), rng.randint(1, 4))
        node_ids, free = free[:take], free[take:]
        walltime = rng.uniform(600.0, 4 * HOUR)
        job = Job(
            job_id=job_id,
            submit_time=0.0,
            nodes=take,
            walltime=walltime,
            runtime=walltime * rng.uniform(0.3, 0.9),
            mem_per_node=rng.choice((8, 16, 24)) * GiB,
        )
        grants = {}
        if rng.random() < 0.5:
            pools = cluster.all_pools()
            if pools:
                pool = rng.choice(pools)
                amount = min(pool.free, rng.choice((1, 2, 4)) * GiB)
                if amount > 0:
                    grants[pool.pool_id] = amount
        cluster.allocate_nodes(job.job_id, node_ids, min(job.mem_per_node, 16 * GiB))
        if grants:
            cluster.allocate_pool(job.job_id, grants)
        job.state = job.state.__class__.RUNNING
        job.start_time = now - rng.uniform(0.0, walltime * 0.5)
        job.assigned_nodes = list(node_ids)
        job.pool_grants = grants
        job.dilation = rng.choice((0.0, 0.1, 0.25))
        running.append(job)
        job_id += 1
    return running


def _random_reservations(rng: random.Random, cluster: Cluster, now: float):
    out = []
    pools = cluster.all_pools()
    for i in range(rng.randint(0, 5)):
        start = now + rng.uniform(0.0, 3 * HOUR)
        node_count = rng.randint(1, min(4, cluster.num_nodes))
        node_ids = tuple(
            sorted(rng.sample(range(cluster.num_nodes), node_count))
        )
        grants = ()
        if pools and rng.random() < 0.6:
            pool = rng.choice(pools)
            grants = ((pool.pool_id, rng.choice((1, 2, 4)) * GiB),)
        out.append(
            Reservation(
                job_id=2000 + i,
                start=start,
                end=start + rng.uniform(300.0, 2 * HOUR),
                node_ids=node_ids,
                pool_grants=grants,
            )
        )
    return out


def _duration_of(job: Job) -> float:
    return job.walltime * (1.0 + job.dilation)


def _pair(rng: random.Random):
    """A (new, oracle) profile pair over identical random state."""
    cluster = _random_cluster(rng)
    now = rng.uniform(0.0, 1000.0)
    running = _random_running(rng, cluster, now)
    new = AvailabilityProfile(cluster, running, now, _duration_of)
    ref = OracleProfile(cluster, running, now, _duration_of)
    for res in _random_reservations(rng, cluster, now):
        new.add_reservation(res)
        ref.add_reservation(res)
    return cluster, now, new, ref


def _probe_times(rng: random.Random, profile, now: float):
    times = list(profile.breakpoints())
    probes = list(times)
    probes += [t + 1e-10 for t in times[:4]]  # inside the epsilon band
    probes += [t - 1e-10 for t in times[:4] if t > 0]
    probes += [now + rng.uniform(0.0, 5 * HOUR) for _ in range(8)]
    return probes


def _assert_profiles_agree(rng: random.Random, cluster, now, new, ref):
    assert new.breakpoints() == ref.breakpoints()
    after = now + rng.uniform(0.0, HOUR)
    assert new.breakpoints(after=after) == ref.breakpoints(after=after)
    for t in _probe_times(rng, ref, now):
        assert new.free_at(t) == ref.free_at(t), f"free_at({t})"
        dur = rng.uniform(60.0, 3 * HOUR)
        assert new.window_free(t, dur) == ref.window_free(t, dur), (
            f"window_free({t}, {dur})"
        )


ALLOCATORS = {
    "global": GlobalPoolAllocator(),
    "rack": RackLocalAllocator(),
    "hybrid": HybridAllocator(),
}


class TestQueryEquivalence:
    @pytest.mark.parametrize("seed", range(60))
    def test_instant_and_window_queries(self, seed):
        rng = random.Random(1_000 + seed)
        cluster, now, new, ref = _pair(rng)
        _assert_profiles_agree(rng, cluster, now, new, ref)

    @pytest.mark.parametrize("seed", range(60))
    @pytest.mark.parametrize("placement", ["first_fit", "rack_pack",
                                           "min_remote", "spread"])
    def test_earliest_start(self, seed, placement):
        rng = random.Random(7_000 + seed)
        cluster, now, new, ref = _pair(rng)
        pol = placement_for(placement)
        allocator = ALLOCATORS[rng.choice(list(ALLOCATORS))]
        for probe in range(4):
            job = Job(
                job_id=1 + probe,
                submit_time=0.0,
                nodes=rng.randint(1, cluster.num_nodes),
                walltime=rng.uniform(600.0, 6 * HOUR),
                runtime=600.0,
                mem_per_node=rng.choice((8, 16, 24, 32)) * GiB,
            )
            dur = rng.uniform(300.0, 4 * HOUR)
            remote = rng.choice((0, GiB, 4 * GiB, 16 * GiB))
            memory_aware = rng.random() < 0.7
            got = new.earliest_start(
                job, dur, remote, pol, allocator, memory_aware=memory_aware
            )
            want = ref.earliest_start(
                job, dur, remote, pol, allocator, memory_aware=memory_aware
            )
            assert got == want

    @pytest.mark.parametrize("seed", range(20))
    def test_bounded_scan_matches_unbounded_verdict(self, seed):
        """not_after must equal 'scan fully, then compare the start'."""
        rng = random.Random(23_000 + seed)
        cluster, now, new, ref = _pair(rng)
        pol = placement_for("first_fit")
        allocator = ALLOCATORS["global"]
        job = Job(
            job_id=5, submit_time=0.0,
            nodes=rng.randint(1, cluster.num_nodes),
            walltime=HOUR, runtime=HOUR / 2,
            mem_per_node=8 * GiB,
        )
        dur = rng.uniform(300.0, 2 * HOUR)
        cap = now + rng.uniform(0.0, 2 * HOUR)
        bounded = new.earliest_start(
            job, dur, 0, pol, allocator, not_after=cap
        )
        full = ref.earliest_start(job, dur, 0, pol, allocator)
        if bounded is None:
            assert full is None or full.start > cap
        else:
            assert bounded == full
            assert bounded.start <= cap


class TestIncrementalMutation:
    @pytest.mark.parametrize("seed", range(40))
    def test_add_remove_patching(self, seed):
        """Random add/remove sequences leave queries identical."""
        rng = random.Random(11_000 + seed)
        cluster, now, new, ref = _pair(rng)
        extra = _random_reservations(rng, cluster, now)
        held = []
        for res in extra:
            new.add_reservation(res)
            ref.add_reservation(res)
            held.append(res)
            if held and rng.random() < 0.5:
                victim = held.pop(rng.randrange(len(held)))
                new.remove_reservation(victim)
                ref.remove_reservation(victim)
            _assert_profiles_agree(rng, cluster, now, new, ref)

    @pytest.mark.parametrize("seed", range(40))
    def test_apply_start_equals_rebuild(self, seed):
        """apply_start == rebuilding from the post-start cluster."""
        rng = random.Random(17_000 + seed)
        cluster = _random_cluster(rng)
        now = rng.uniform(0.0, 500.0)
        running = _random_running(rng, cluster, now)
        new = AvailabilityProfile(cluster, running, now, _duration_of)

        free = cluster.sorted_free_ids()
        if not free:
            pytest.skip("random state left no free nodes")
        take = rng.randint(1, min(3, len(free)))
        node_ids = tuple(free[:take])
        grants = {}
        pools = cluster.all_pools()
        if pools and rng.random() < 0.6:
            pool = rng.choice(pools)
            amount = min(pool.free, 2 * GiB)
            if amount > 0:
                grants = {pool.pool_id: amount}
        walltime = rng.uniform(600.0, 4 * HOUR)
        job = Job(
            job_id=999,
            submit_time=now,
            nodes=take,
            walltime=walltime,
            runtime=walltime * 0.7,
            mem_per_node=8 * GiB,
        )
        # Mutate cluster the way the engine would, fold into the
        # profile, then compare against a from-scratch build.
        cluster.allocate_nodes(job.job_id, node_ids, 8 * GiB)
        if grants:
            cluster.allocate_pool(job.job_id, grants)
        job.state = job.state.__class__.RUNNING
        job.start_time = now
        job.assigned_nodes = list(node_ids)
        job.pool_grants = grants
        job.dilation = rng.choice((0.0, 0.2))
        est_end = job.start_time + _duration_of(job)
        new.apply_start(node_ids, grants, est_end)

        running.append(job)
        fresh = AvailabilityProfile(cluster, running, now, _duration_of)
        ref = OracleProfile(cluster, running, now, _duration_of)
        assert new.breakpoints() == fresh.breakpoints() == ref.breakpoints()
        for t in _probe_times(rng, ref, now):
            assert new.free_at(t) == fresh.free_at(t) == ref.free_at(t)
            dur = rng.uniform(60.0, 2 * HOUR)
            assert (
                new.window_free(t, dur)
                == fresh.window_free(t, dur)
                == ref.window_free(t, dur)
            )

    def test_truncate_reservations_matches_removals(self):
        """truncate_reservations(keep) ≡ remove_reservation over the
        suffix, for every split point — including the no-op (cursor
        kept) and clear-all (O(count)) fast paths."""
        rng = random.Random(4242)
        cluster = Cluster(ClusterSpec(
            num_nodes=8, nodes_per_rack=4,
            node=NodeSpec(local_mem=16 * GiB), pool=PoolSpec(global_pool=64 * GiB),
        ))
        reservations = [
            Reservation(job_id=100 + i,
                        start=50.0 * (i + 1),
                        end=50.0 * (i + 1) + rng.uniform(30.0, 200.0),
                        node_ids=(i % 8, (i + 3) % 8),
                        pool_grants=((("global", 1024),) if i % 2 else ()))
            for i in range(5)
        ]
        for keep in range(6):
            truncated = AvailabilityProfile(cluster, [], 0.0, _duration_of)
            removed = AvailabilityProfile(cluster, [], 0.0, _duration_of)
            for res in reservations:
                truncated.add_reservation(res)
                removed.add_reservation(res)
            truncated.truncate_reservations(keep)
            for res in reservations[keep:][::-1]:
                removed.remove_reservation(res)
            assert truncated.reservations == removed.reservations
            assert truncated.reservation_count == keep
            assert truncated.breakpoints() == removed.breakpoints()
            for t in (0.0, 60.0, 120.0, 180.0, 260.0, 400.0):
                assert truncated.free_at(t) == removed.free_at(t)
        # The no-op keep >= count leaves a live cursor untouched.
        profile = AvailabilityProfile(cluster, [], 0.0, _duration_of)
        profile.add_reservation(reservations[0])
        cursor = profile.sweep_cursor()
        profile.truncate_reservations(5)
        assert profile.sweep_cursor() is cursor
        profile.truncate_reservations(0)
        assert profile.reservation_count == 0
        assert profile.sweep_cursor() is not cursor

    def test_rebase_reanchors_live_cursor(self):
        """rebase keeps a live cursor and re-anchors its grid: after
        the rebase, cursor scans equal a fresh profile's scans at the
        new instant (states are pure functions of their instant)."""
        cluster = Cluster(ClusterSpec(
            num_nodes=8, nodes_per_rack=4,
            node=NodeSpec(cores=8, local_mem=16 * GiB),
            pool=PoolSpec(global_pool=64 * GiB),
        ))
        jobs = []
        for i, (start, dur) in enumerate([(0.0, 3000.0), (0.0, 7000.0)]):
            job = Job(job_id=1 + i, submit_time=0.0, nodes=2,
                      walltime=dur, runtime=dur, mem_per_node=GiB)
            job.state = job.state.__class__.RUNNING
            job.start_time = start
            job.assigned_nodes = [2 * i, 2 * i + 1]
            jobs.append(job)
        sched = build_scheduler(backfill="conservative")
        allocator = sched.resolve_allocator(cluster)
        queued = Job(job_id=10, submit_time=0.0, nodes=6, walltime=100.0,
                     runtime=50.0, mem_per_node=GiB)
        # 60.0 falls between grid times (fresh anchor state computed);
        # 900.0 *is* a grid time — the reservation's start — so the
        # cursor reuses that state as the new anchor.
        for due in (60.0, 900.0):
            profile = AvailabilityProfile(cluster, jobs, 0.0, _duration_of)
            res = Reservation(7, 900.0, 1000.0, (0, 1), ())
            profile.add_reservation(res)
            before = profile.sweep_cursor()
            before.earliest_start(  # materialize deep
                queued, 100.0, 0, sched.placement, allocator)
            assert profile.rebase(due)
            assert profile.sweep_cursor() is before  # re-anchored, kept
            fresh = AvailabilityProfile(cluster, jobs, due, _duration_of)
            fresh.add_reservation(res)
            got = profile.sweep_cursor().earliest_start(
                queued, 100.0, 0, sched.placement, allocator)
            want = fresh.sweep_cursor().earliest_start(
                queued, 100.0, 0, sched.placement, allocator)
            assert got == want
            assert profile.breakpoints() == fresh.breakpoints()

    def test_rebase_refuses_clamped_release(self):
        """A clamped (overrun) release embeds the build-time now; a
        fresh build at a later instant would clamp differently, so
        rebase must refuse (kill_policy='none' corner)."""
        cluster = Cluster(ClusterSpec(
            num_nodes=4, nodes_per_rack=2,
            node=NodeSpec(local_mem=16 * GiB), pool=PoolSpec(),
        ))
        job = Job(job_id=1, submit_time=0.0, nodes=2, walltime=10.0,
                  runtime=5.0, mem_per_node=GiB)
        job.state = job.state.__class__.RUNNING
        job.start_time = -50.0  # overran its estimate long ago
        job.assigned_nodes = [0, 1]
        profile = AvailabilityProfile(cluster, [job], 0.0, _duration_of)
        # Clamped release sits at now + 1.0 = 1.0.
        assert profile.breakpoints() == [0.0, 1.0]
        assert not profile.rebase(0.5)
        fresh = AvailabilityProfile(cluster, [job], 0.5, _duration_of)
        assert fresh.breakpoints() == [0.5, 1.5]  # re-clamped

    def test_fits_machine_static_and_memo_safe(self):
        """fits_machine is an empty-machine hypothetical: its verdict
        must not depend on live pool state (min_remote's ordering now
        receives the capacity hint), so memoizing it is sound."""
        spec = ClusterSpec(
            name="uneven", num_nodes=20, nodes_per_rack=16,
            node=NodeSpec(cores=8, local_mem=16 * GiB),
            pool=PoolSpec(rack_pool=48 * GiB),
        )
        cluster = Cluster(spec)
        sched = build_scheduler(placement="min_remote", allocator="rack")
        job = Job(job_id=1, submit_time=0.0, nodes=16, walltime=100.0,
                  runtime=50.0, mem_per_node=20 * GiB)  # 4 GiB remote/node
        first = sched.fits_machine(job, cluster)
        # Draining a pool must not change the verdict (cached or not).
        cluster.allocate_pool(99, {"rack0": 40 * GiB})
        assert sched.fits_machine(job, cluster) == first
        fresh = build_scheduler(placement="min_remote", allocator="rack")
        assert fresh.fits_machine(job, cluster) == first
        cluster.release_pool(99)
        assert sched.fits_machine(job, cluster) == first

    def test_rebase_refuses_stale_state(self):
        cluster = Cluster(ClusterSpec(
            num_nodes=4, nodes_per_rack=2,
            node=NodeSpec(local_mem=16 * GiB), pool=PoolSpec(),
        ))
        job = Job(job_id=1, submit_time=0.0, nodes=2, walltime=100.0,
                  runtime=50.0, mem_per_node=GiB)
        job.state = job.state.__class__.RUNNING
        job.start_time = 0.0
        job.assigned_nodes = [0, 1]
        profile = AvailabilityProfile(cluster, [job], 0.0, _duration_of)
        assert profile.rebase(50.0)  # release at 100 is still ahead
        assert profile.now == 50.0
        assert not profile.rebase(150.0)  # would skip the release
        assert profile.now == 50.0
        assert not profile.rebase(10.0)  # going backwards
        # Reservations survive a rebase (the retained-plan contract):
        # afterwards the profile equals a fresh build at the new
        # instant plus the same reservations re-added in order.
        res = Reservation(2, 60.0, 70.0, (2,), ())
        profile.add_reservation(res)
        assert profile.rebase(55.0)
        assert profile.now == 55.0
        assert profile.reservations == [res]
        fresh = AvailabilityProfile(cluster, [job], 55.0, _duration_of)
        fresh.add_reservation(res)
        for t in (55.0, 60.0, 65.0, 70.0, 100.0, 120.0):
            assert profile.free_at(t) == fresh.free_at(t)
        profile.remove_reservation(res)
        assert profile.rebase(56.0)


# ----------------------------------------------------------------------
# end-to-end schedule anchoring (pinned golden digests)
# ----------------------------------------------------------------------


def _random_jobs(rng: random.Random, num_jobs: int, max_nodes: int):
    jobs = []
    t = 0.0
    for job_id in range(1, num_jobs + 1):
        t += rng.expovariate(1.0 / 400.0)
        walltime = rng.uniform(300.0, 6 * HOUR)
        jobs.append(Job(
            job_id=job_id,
            submit_time=round(t, 3),
            nodes=rng.randint(1, max_nodes),
            walltime=walltime,
            runtime=walltime * rng.uniform(0.2, 1.0),
            mem_per_node=rng.choice((4, 8, 16, 24, 32)) * GiB,
            user=f"user{rng.randint(0, 3)}",
        ))
    return jobs


def _cluster_spec(kind: str) -> ClusterSpec:
    if kind == "thin-global":
        return ClusterSpec(
            name=kind, num_nodes=16, nodes_per_rack=8,
            node=NodeSpec(cores=8, local_mem=16 * GiB),
            pool=PoolSpec(global_pool=128 * GiB),
        )
    if kind == "thin-hybrid":
        return ClusterSpec(
            name=kind, num_nodes=16, nodes_per_rack=4,
            node=NodeSpec(cores=8, local_mem=16 * GiB),
            pool=PoolSpec(rack_pool=32 * GiB, global_pool=64 * GiB),
        )
    if kind == "metered":
        # Finite bandwidth: exercises pressure gates and the
        # shadow-at-now corner of the EASY shadow cache.
        return ClusterSpec(
            name=kind, num_nodes=16, nodes_per_rack=8,
            node=NodeSpec(cores=8, local_mem=16 * GiB),
            pool=PoolSpec(global_pool=128 * GiB, global_bandwidth=64 * 1024.0),
        )
    raise AssertionError(kind)


def _run_one(spec, jobs, scheduler):
    sim = SchedulerSimulation(
        Cluster(spec), scheduler, [job.copy_request() for job in jobs]
    )
    return sim.run()


QUEUES = ["fcfs", "sjf", "wfp"]
BACKFILLS = ["easy", "conservative", "none"]
CLUSTERS = ["thin-global", "thin-hybrid"]


def _base_case(seed, queue, backfill, cluster_kind, memory_aware):
    token = f"{seed}-{queue}-{backfill}-{cluster_kind}-{memory_aware}"
    rng = random.Random(zlib.crc32(token.encode()))
    jobs = _random_jobs(rng, num_jobs=40, max_nodes=12)
    spec = _cluster_spec(cluster_kind)
    kwargs = dict(
        queue=queue, backfill=backfill,
        penalty={"kind": "linear", "beta": 0.3},
        memory_aware=memory_aware,
    )
    return token, lambda: _run_one(spec, jobs, build_scheduler(**kwargs))


def _gated_case(seed, gate):
    token = f"gate-{seed}-{gate}"
    rng = random.Random(31_000 + seed)
    jobs = _random_jobs(rng, num_jobs=40, max_nodes=12)
    spec = _cluster_spec("metered")
    kwargs = dict(
        queue="fcfs", backfill="easy", gate=gate,
        penalty={"kind": "contention", "beta": 0.3, "kappa": 2.0},
    )
    return token, lambda: _run_one(spec, jobs, build_scheduler(**kwargs))


def _overrun_case(seed, backfill):
    token = f"overrun-{seed}-{backfill}"
    rng = random.Random(41_000 + seed)
    jobs = []
    t = 0.0
    for job_id in range(1, 41):
        t += rng.expovariate(1.0 / 400.0)
        walltime = rng.uniform(300.0, 2 * HOUR)
        jobs.append(Job(
            job_id=job_id, submit_time=round(t, 3),
            nodes=rng.randint(1, 12), walltime=walltime,
            runtime=walltime * rng.uniform(0.5, 2.0),  # overruns!
            mem_per_node=rng.choice((4, 8, 16, 24)) * GiB,
        ))
    spec = _cluster_spec("thin-global")
    kwargs = dict(
        queue="fcfs", backfill=backfill, kill_policy="none",
        penalty={"kind": "linear", "beta": 0.3},
    )
    return token, lambda: _run_one(spec, jobs, build_scheduler(**kwargs))


def _fairshare_case(seed, backfill):
    token = f"fairshare-{seed}-{backfill}"
    rng = random.Random(37_000 + seed)
    jobs = _random_jobs(rng, num_jobs=40, max_nodes=12)
    spec = _cluster_spec("thin-global")
    kwargs = dict(
        queue="fairshare", backfill=backfill,
        penalty={"kind": "linear", "beta": 0.3},
    )
    return token, lambda: _run_one(spec, jobs, build_scheduler(**kwargs))


def golden_cases():
    """Every end-to-end case in this suite, for tools/gen_golden.py."""
    for seed in range(6):
        for queue in QUEUES:
            for backfill in BACKFILLS:
                for cluster_kind in CLUSTERS:
                    for memory_aware in (True, False):
                        yield _base_case(
                            seed, queue, backfill, cluster_kind, memory_aware
                        )
    for seed in range(6):
        for gate in ("pressure", "adaptive"):
            yield _gated_case(seed, gate)
    for seed in range(6):
        for backfill in ("easy", "conservative"):
            yield _overrun_case(seed, backfill)
    for seed in range(4):
        for backfill in ("easy", "none"):
            yield _fairshare_case(seed, backfill)


class TestEndToEndGolden:
    """216 base combos (6 seeds × 3 queues × 3 backfills × 2 clusters
    × 2 memory-awareness modes) plus the gate, overrun, and fair-share
    specials — each runs the optimized stack and requires its full
    decision digest to match the pinned golden baseline."""

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("queue", QUEUES)
    @pytest.mark.parametrize("backfill", BACKFILLS)
    @pytest.mark.parametrize("cluster_kind", CLUSTERS)
    @pytest.mark.parametrize("memory_aware", [True, False])
    def test_schedules_match_golden(
        self, seed, queue, backfill, cluster_kind, memory_aware
    ):
        token, run = _base_case(seed, queue, backfill, cluster_kind, memory_aware)
        assert_matches_golden(GOLDEN, token, run())

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("gate", ["pressure", "adaptive"])
    def test_gated_schedules_match_golden(self, seed, gate):
        """Gates can veto at-now starts, the corner the EASY shadow
        cache must never reuse across."""
        token, run = _gated_case(seed, gate)
        assert_matches_golden(GOLDEN, token, run())

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("backfill", ["easy", "conservative"])
    def test_overrun_schedules_match_golden(self, seed, backfill):
        """kill_policy='none' with overrunning jobs exercises the
        overrun clamp — the corner where a cached profile must refuse
        to rebase."""
        token, run = _overrun_case(seed, backfill)
        assert_matches_golden(GOLDEN, token, run())

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("backfill", ["easy", "none"])
    def test_fairshare_schedules_match_golden(self, seed, backfill):
        """Fair-share keeps order() side effects; the stateless fast
        paths must not change when it observes the queue."""
        token, run = _fairshare_case(seed, backfill)
        assert_matches_golden(GOLDEN, token, run())

"""Regression pins and fuzzing for the preset scenario library.

Every preset runs (quick-sized) under EASY and conservative backfill
with two independent anchors:

* a **pinned golden digest** of the complete schedule record — the
  preset library is itself regression surface; a silent decision
  change inside any preset would quietly erode what the audit gate
  proves (``tools/gen_golden.py --only audit_presets`` re-baselines);
* a **deep-audit-clean** assertion — the acceptance criterion the CI
  ``audit-presets`` job re-proves at full size.

The hypothesis pass then perturbs preset *parameters* (seeds, sizes,
failure cadence) with the deep validator as the only oracle: whatever
schedule falls out, every invariant must hold.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.audit import deep_audit
from repro.audit.presets import PRESET_NAMES, preset_params, run_preset

from ._golden import assert_matches_golden

GOLDEN = "audit_presets"

BACKFILLS = ("easy", "conservative")


def _case(name: str, backfill: str):
    token = f"{name}-{backfill}"

    def run():
        return run_preset(name, backfill=backfill, quick=True)

    return token, run


def golden_cases():
    """Every case in this suite, for tools/gen_golden.py."""
    for name in PRESET_NAMES:
        for backfill in BACKFILLS:
            yield _case(name, backfill)


@pytest.mark.parametrize("backfill", BACKFILLS)
@pytest.mark.parametrize("name", PRESET_NAMES)
def test_preset_schedule_matches_golden(name, backfill):
    token, run = _case(name, backfill)
    result = run()
    assert_matches_golden(GOLDEN, token, result)
    report = deep_audit(result)
    assert report.ok, [str(v) for v in report.errors]


def test_preset_params_are_validated():
    with pytest.raises(KeyError):
        run_preset("no-such-preset")
    with pytest.raises(KeyError):
        preset_params("pool-cliff", params={"bogus_knob": 1})
    merged = preset_params("pool-cliff", quick=True, params={"seed": 99})
    assert merged["seed"] == 99
    assert merged["num_jobs"] < preset_params("pool-cliff")["num_jobs"]


# ----------------------------------------------------------------------
# parameter fuzzing: the auditor is the only oracle
# ----------------------------------------------------------------------
@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_jobs=st.integers(min_value=10, max_value=60),
    backfill=st.sampled_from(BACKFILLS),
)
def test_fuzzed_pool_cliff_always_audits_clean(seed, num_jobs, backfill):
    result = run_preset(
        "pool-cliff", backfill=backfill, quick=True,
        params={"seed": seed, "num_jobs": num_jobs},
    )
    report = deep_audit(result)
    assert report.ok, [str(v) for v in report.errors]


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    mtbf=st.floats(min_value=5_000.0, max_value=80_000.0),
    mean_repair=st.floats(min_value=500.0, max_value=10_000.0),
)
def test_fuzzed_drain_storm_always_audits_clean(seed, mtbf, mean_repair):
    result = run_preset(
        "drain-storm", quick=True,
        params={"seed": seed, "num_jobs": 40, "mtbf": mtbf,
                "mean_repair": mean_repair},
    )
    report = deep_audit(result)
    assert report.ok, [str(v) for v in report.errors]


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    cancel_fraction=st.floats(min_value=0.0, max_value=0.6),
    backfill=st.sampled_from(BACKFILLS),
)
def test_fuzzed_cancel_races_always_audit_clean(seed, cancel_fraction, backfill):
    result = run_preset(
        "cancel-backfill", backfill=backfill, quick=True,
        params={"seed": seed, "num_jobs": 40,
                "cancel_fraction": cancel_fraction},
    )
    report = deep_audit(result)
    assert report.ok, [str(v) for v in report.errors]

"""Covers the seams the focused suites skip: CLI flags, describe()
contents, restart lineage in metrics, and config/scheduler edges."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.cluster import Cluster, ClusterSpec, NodeSpec, PoolSpec
from repro.engine import FailureEvent, SchedulerSimulation
from repro.memdis import NoPenalty
from repro.metrics import collect_jobs, summarize
from repro.sched import EasyBackfill, Scheduler, build_scheduler
from repro.units import GiB
from repro.workload import JobState

from .conftest import make_job


class TestDescribe:
    def test_describe_has_all_keys(self):
        info = Scheduler().describe()
        assert set(info) == {
            "queue", "backfill", "placement", "penalty", "gate", "kill",
            "memory_aware",
        }
        assert info["memory_aware"] == "true"

    def test_describe_memory_blind(self):
        sched = Scheduler(backfill=EasyBackfill(memory_aware=False))
        assert sched.describe()["memory_aware"] == "false"

    def test_build_scheduler_fairshare_and_dominant(self):
        assert build_scheduler(queue="fairshare").describe()["queue"] \
            == "fairshare"
        assert build_scheduler(queue="dominant").describe()["queue"] \
            == "dominant"


class TestCLIGantt:
    def test_run_with_gantt_flag(self, tmp_path, capsys):
        config = {
            "name": "gantt-test",
            "cluster": {"num_nodes": 2, "nodes_per_rack": 2,
                        "node": {"local_mem": "16GiB"},
                        "pool": {"global_pool": "16GiB"}},
            "workload": {"reference": "W-COMP", "num_jobs": 10,
                         "load": 0.5, "seed": 2,
                         "max_mem_per_node": 32 * GiB},
            "scheduler": {"penalty": "none"},
        }
        path = tmp_path / "cfg.json"
        path.write_text(json.dumps(config))
        assert cli_main(["run", "--config", str(path), "--gantt", "40"]) == 0
        out = capsys.readouterr().out
        assert "gantt:" in out
        assert "n000 |" in out


class TestRestartLineageInMetrics:
    def test_summary_counts_continuations(self):
        spec = ClusterSpec(num_nodes=2, nodes_per_rack=2,
                           node=NodeSpec(local_mem=16 * GiB))
        job = make_job(job_id=1, submit=0.0, nodes=1, runtime=1000.0,
                       walltime=2000.0, mem=1 * GiB)
        job.checkpoint_interval = 100.0
        result = SchedulerSimulation(
            Cluster(spec), Scheduler(penalty=NoPenalty()), [job],
            failures=[FailureEvent(250.0, 0, 50.0)],
        ).run()
        summary = summarize(result)
        # Two job records: the killed root and the completed continuation.
        assert summary.jobs_total == 2
        assert summary.jobs_killed == 1
        assert summary.jobs_completed == 1
        frame = collect_jobs(result.jobs)
        assert len(frame) == 2

    def test_continuation_visible_in_frame_wait(self):
        spec = ClusterSpec(num_nodes=2, nodes_per_rack=2,
                           node=NodeSpec(local_mem=16 * GiB))
        job = make_job(job_id=1, submit=0.0, nodes=2, runtime=1000.0,
                       walltime=2000.0, mem=1 * GiB)
        job.checkpoint_interval = 100.0
        result = SchedulerSimulation(
            Cluster(spec), Scheduler(penalty=NoPenalty()), [job],
            failures=[FailureEvent(250.0, 0, 500.0)],
        ).run()
        continuation = next(j for j in result.jobs if j.restart_of == 1)
        # Needs both nodes; node 0 is down until 750.
        assert continuation.wait_time == pytest.approx(500.0)


class TestEngineEdges:
    def test_sample_interval_validation(self):
        spec = ClusterSpec(num_nodes=1, nodes_per_rack=1,
                           node=NodeSpec(local_mem=16 * GiB))
        sim = SchedulerSimulation(
            Cluster(spec), Scheduler(penalty=NoPenalty()),
            [make_job(job_id=1, runtime=10.0, walltime=20.0, mem=1 * GiB)],
            sample_interval=-5.0,
        )
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            sim.run()

    def test_run_until_partial(self):
        spec = ClusterSpec(num_nodes=1, nodes_per_rack=1,
                           node=NodeSpec(local_mem=16 * GiB))
        jobs = [
            make_job(job_id=1, submit=0.0, runtime=100.0, walltime=200.0,
                     mem=1 * GiB),
            make_job(job_id=2, submit=1.0, runtime=100.0, walltime=200.0,
                     mem=1 * GiB),
        ]
        result = SchedulerSimulation(
            Cluster(spec), Scheduler(penalty=NoPenalty()), jobs
        ).run(until=50.0)
        assert jobs[0].state is JobState.RUNNING
        assert jobs[1].state is JobState.PENDING
        assert result is not None

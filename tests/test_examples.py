"""Smoke tests: every example script runs to completion.

The examples are deliverables, so they get the same regression
treatment as the library: each must execute end-to-end in-process
(fast — they are all seeded and small) and print its headline output.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


def test_examples_exist():
    scripts = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))
    assert scripts == [
        "capacity_planning",
        "failure_study",
        "policy_comparison",
        "pool_sizing_study",
        "quickstart",
        "trace_replay",
    ]


def test_quickstart(capsys):
    out = run_example("quickstart", capsys)
    assert "jobs completed" in out
    assert "node utilization" in out


def test_capacity_planning(capsys):
    out = run_example("capacity_planning", capsys)
    assert "SLO" in out
    assert "cheapest passing configuration" in out


def test_policy_comparison(capsys):
    out = run_example("policy_comparison", capsys)
    assert "fcfs + EASY" in out
    assert "mem-blind" in out
    # The example's closing claim must match its own numbers: aware
    # EASY at least ties blind EASY in this pool-bound regime.
    assert "memory-aware EASY vs memory-blind EASY" in out


def test_trace_replay(capsys):
    out = run_example("trace_replay", capsys)
    assert "synthesized memory" in out
    assert "FAT-512" in out and "THIN-G50" in out
    # Synthesis actually happened (non-zero mean).
    assert "0.0 GiB/node" not in out


@pytest.mark.slow
def test_pool_sizing_study(capsys):
    out = run_example("pool_sizing_study", capsys)
    assert "pool budget" in out
    assert "±" in out


def test_failure_study(capsys):
    out = run_example("failure_study", capsys)
    assert "survival" in out
    assert "gantt:" in out
    # Checkpointing visibly recovers completions in the output table.
    assert "ckpt" in out and "plain" in out

"""Property-based tests for the AvailabilityProfile.

The profile is the correctness heart of memory-aware backfilling, so
its algebra gets its own property suite: window queries must be
conservative refinements of instant queries, reservations must
subtract exactly what they claim, and earliest-start must actually be
feasible at the time it returns.

The second half targets the reservation **interval index** in
isolation: randomized insert/remove/query sequences are checked
against the brute-force oracle (``OracleProfile`` in ``_oracles.py``,
a rescan-everything specification), with time values drawn from coarse
grids so reservation starts, ends, and release times collide at the
same instant — the tie-order corners the incremental sweep must
reproduce exactly.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.cluster import Cluster, ClusterSpec, NodeSpec, PoolSpec
from repro.memdis import GlobalPoolAllocator
from repro.sched import AvailabilityProfile, FirstFitPlacement, Reservation
from repro.sched.placement import placement_for
from repro.units import GiB
from repro.workload import Job, JobState

from ._oracles import OracleProfile


def make_cluster(num_nodes=6, pool=32):
    return Cluster(ClusterSpec(
        num_nodes=num_nodes, nodes_per_rack=3,
        node=NodeSpec(local_mem=16 * GiB),
        pool=PoolSpec(global_pool=pool * GiB),
    ))


reservations = st.lists(
    st.tuples(
        st.floats(0, 1000, allow_nan=False),   # start
        st.floats(1, 500, allow_nan=False),    # duration
        st.integers(0, 5),                     # first node id
        st.integers(1, 3),                     # node count
        st.integers(0, 8),                     # pool GiB
    ),
    max_size=6,
).map(
    lambda rows: [
        Reservation(
            job_id=100 + i,
            start=start,
            end=start + duration,
            node_ids=tuple(range(first, min(first + count, 6))),
            pool_grants=(("global", pool * GiB),) if pool else (),
        )
        for i, (start, duration, first, count, pool) in enumerate(rows)
    ]
)


class TestProfileAlgebra:
    @given(reservations, st.floats(0, 1500, allow_nan=False),
           st.floats(0.5, 400, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_window_free_is_subset_of_instant_free(self, res_list, t, dur):
        cluster = make_cluster()
        profile = AvailabilityProfile(cluster, [], now=0.0,
                                      duration_of=lambda j: j.walltime)
        for res in res_list:
            profile.add_reservation(res)
        instant_free, instant_pool = profile.free_at(t)
        window_free, window_pool = profile.window_free(t, dur)
        assert window_free <= instant_free
        for pool_id, level in window_pool.items():
            assert level <= instant_pool[pool_id] + 1e-9

    @given(reservations, st.floats(0, 1500, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_zero_width_window_matches_instant(self, res_list, t):
        cluster = make_cluster()
        profile = AvailabilityProfile(cluster, [], now=0.0,
                                      duration_of=lambda j: j.walltime)
        for res in res_list:
            profile.add_reservation(res)
        instant = profile.free_at(t)
        window = profile.window_free(t, 1e-9)
        assert window[0] == instant[0]
        assert window[1] == instant[1]

    @given(reservations)
    @settings(max_examples=80, deadline=None)
    def test_far_future_everything_returns(self, res_list):
        cluster = make_cluster()
        profile = AvailabilityProfile(cluster, [], now=0.0,
                                      duration_of=lambda j: j.walltime)
        for res in res_list:
            profile.add_reservation(res)
        free, pool = profile.free_at(1e9)
        assert free == frozenset(range(6))
        assert pool["global"] == 32 * GiB

    @given(reservations, st.integers(1, 6), st.floats(1, 300),
           st.integers(0, 20))
    @settings(max_examples=80, deadline=None)
    def test_earliest_start_is_feasible_at_its_time(
        self, res_list, nodes, duration, remote_gib
    ):
        cluster = make_cluster()
        profile = AvailabilityProfile(cluster, [], now=0.0,
                                      duration_of=lambda j: j.walltime)
        for res in res_list:
            profile.add_reservation(res)
        job = Job(job_id=1, submit_time=0.0, nodes=nodes,
                  walltime=duration * 2, runtime=duration,
                  mem_per_node=16 * GiB + remote_gib * GiB)
        found = profile.earliest_start(
            job, duration, remote_gib * GiB,
            FirstFitPlacement(), GlobalPoolAllocator(),
        )
        if remote_gib * nodes > 32:
            # Demand exceeds the whole pool: never feasible.
            assert found is None
            return
        assert found is not None
        # The reservation's claims must be consistent with the window.
        free, pool_min = profile.window_free(found.start, duration)
        assert set(found.node_ids) <= free
        for pool_id, amount in found.pool_grants:
            assert amount <= pool_min[pool_id] + 1e-9

    @given(reservations, st.integers(1, 4), st.floats(1, 300))
    @settings(max_examples=60, deadline=None)
    def test_removing_reservations_never_delays(self, res_list, nodes,
                                                duration):
        """Monotonicity: a less-loaded machine starts you no later."""
        cluster = make_cluster()
        loaded = AvailabilityProfile(cluster, [], now=0.0,
                                     duration_of=lambda j: j.walltime)
        empty = AvailabilityProfile(cluster, [], now=0.0,
                                    duration_of=lambda j: j.walltime)
        for res in res_list:
            loaded.add_reservation(res)
        job = Job(job_id=1, submit_time=0.0, nodes=nodes,
                  walltime=duration * 2, runtime=duration,
                  mem_per_node=4 * GiB)
        with_res = loaded.earliest_start(
            job, duration, 0, FirstFitPlacement(), GlobalPoolAllocator())
        without = empty.earliest_start(
            job, duration, 0, FirstFitPlacement(), GlobalPoolAllocator())
        assert without is not None
        assert with_res is not None  # pool-less demand always fits eventually
        assert without.start <= with_res.start + 1e-9


# ----------------------------------------------------------------------
# interval index vs brute-force oracle
# ----------------------------------------------------------------------

#: Coarse time grid: draws collide constantly, so reservation starts,
#: reservation ends, and running-job release times stack on the same
#: instants — the adversarial corner for the incremental sweep.
GRID = [float(v) for v in range(0, 660, 60)]

grid_times = st.sampled_from(GRID)
grid_durations = st.sampled_from([0.0, 60.0, 120.0, 180.0, 300.0])


def _oracle_pair(running):
    cluster = Cluster(ClusterSpec(
        num_nodes=8, nodes_per_rack=4,
        node=NodeSpec(cores=8, local_mem=16 * GiB),
        pool=PoolSpec(rack_pool=24 * GiB, global_pool=32 * GiB),
    ))
    dur_of = lambda j: j.walltime * (1.0 + j.dilation)  # noqa: E731
    jobs = []
    for i, (start, walltime, first, count, grant) in enumerate(running):
        node_ids = list(range(first, min(first + count, 8)))
        if not node_ids:
            continue
        job = Job(job_id=900 + i, submit_time=0.0, nodes=len(node_ids),
                  walltime=walltime, runtime=walltime,
                  mem_per_node=8 * GiB)
        job.state = JobState.RUNNING
        job.start_time = start
        job.assigned_nodes = node_ids
        job.pool_grants = {"global": grant * GiB} if grant else {}
        job.dilation = 0.0
        jobs.append(job)
    new = AvailabilityProfile(cluster, jobs, now=0.0, duration_of=dur_of)
    ref = OracleProfile(cluster, jobs, now=0.0, duration_of=dur_of)
    return cluster, new, ref


running_jobs = st.lists(
    st.tuples(
        st.sampled_from([-120.0, -60.0, 0.0]),  # start_time
        grid_times.filter(lambda v: v > 0),     # walltime (release on grid)
        st.integers(0, 7), st.integers(1, 3),   # node range
        st.integers(0, 4),                      # global-pool GiB grant
    ),
    max_size=4,
)

reservation_specs = st.lists(
    st.tuples(
        grid_times,                 # start (collides with releases)
        grid_durations,             # duration (0 => same-instant start/end)
        st.integers(0, 7), st.integers(1, 4),
        st.integers(0, 6),          # pool GiB
        st.booleans(),              # rack vs global pool
    ),
    min_size=1, max_size=8,
)


def _make_reservation(i, spec):
    start, duration, first, count, pool_gib, rack = spec
    grants = ()
    if pool_gib:
        grants = ((("rack0" if rack else "global"), pool_gib * GiB),)
    return Reservation(
        job_id=100 + i,
        start=start,
        end=start + duration,
        node_ids=tuple(range(first, min(first + count, 8))),
        pool_grants=grants,
    )


def _assert_index_matches_oracle(new, ref, probes):
    assert new.breakpoints() == ref.breakpoints()
    for t in probes:
        assert new.free_at(t) == ref.free_at(t), f"free_at({t})"
        for dur in (1e-9, 60.0, 150.0, 400.0):
            assert new.window_free(t, dur) == ref.window_free(t, dur), (
                f"window_free({t}, {dur})"
            )


class TestIntervalIndexVsOracle:
    @given(running_jobs, reservation_specs, st.data())
    @settings(max_examples=120, deadline=None)
    def test_insert_remove_query_matches_oracle(self, running, specs, data):
        """Randomized add/remove sequences with colliding instants:
        every query must match the rescan-everything oracle after
        every mutation."""
        cluster, new, ref = _oracle_pair(running)
        held = []
        for i, spec in enumerate(specs):
            res = _make_reservation(i, spec)
            new.add_reservation(res)
            ref.add_reservation(res)
            held.append(res)
            if held and data.draw(st.booleans(), label=f"remove_after_{i}"):
                victim = held.pop(
                    data.draw(st.integers(0, len(held) - 1),
                              label=f"victim_{i}")
                )
                new.remove_reservation(victim)
                ref.remove_reservation(victim)
            probes = [t for t in GRID]
            probes += [t + 1e-10 for t in GRID[:4]]
            probes += [t - 1e-10 for t in GRID[1:4]]
            _assert_index_matches_oracle(new, ref, probes)

    @given(running_jobs, reservation_specs, st.integers(1, 8),
           grid_durations.filter(lambda d: d > 0),
           st.sampled_from(["first_fit", "rack_pack", "min_remote", "spread"]),
           st.integers(0, 8))
    @settings(max_examples=120, deadline=None)
    def test_earliest_start_matches_oracle(
        self, running, specs, nodes, duration, placement, remote_gib
    ):
        """The incremental sweep inside earliest_start must agree with
        the oracle's full rescan at every breakpoint — including the
        same-instant activation/retirement collisions the grid
        forces."""
        cluster, new, ref = _oracle_pair(running)
        for i, spec in enumerate(specs):
            res = _make_reservation(i, spec)
            new.add_reservation(res)
            ref.add_reservation(res)
        job = Job(job_id=1, submit_time=0.0, nodes=nodes,
                  walltime=duration * 2, runtime=duration,
                  mem_per_node=16 * GiB + remote_gib * GiB)
        pol = placement_for(placement)
        allocator = GlobalPoolAllocator()
        got = new.earliest_start(job, duration, remote_gib * GiB, pol,
                                 allocator)
        want = ref.earliest_start(job, duration, remote_gib * GiB, pol,
                                  allocator)
        assert got == want

    @given(running_jobs, reservation_specs, st.integers(1, 8),
           grid_durations.filter(lambda d: d > 0), grid_times)
    @settings(max_examples=100, deadline=None)
    def test_bounded_probe_matches_oracle_verdict(
        self, running, specs, nodes, duration, cap
    ):
        """not_after probes (the plan-cache replay primitive) must
        equal 'scan fully, then compare the start against the cap'."""
        cluster, new, ref = _oracle_pair(running)
        for i, spec in enumerate(specs):
            res = _make_reservation(i, spec)
            new.add_reservation(res)
            ref.add_reservation(res)
        job = Job(job_id=1, submit_time=0.0, nodes=nodes,
                  walltime=duration * 2, runtime=duration,
                  mem_per_node=8 * GiB)
        pol = FirstFitPlacement()
        allocator = GlobalPoolAllocator()
        bounded = new.earliest_start(job, duration, 0, pol, allocator,
                                     not_after=cap)
        full = ref.earliest_start(job, duration, 0, pol, allocator)
        if bounded is None:
            assert full is None or full.start > cap
        else:
            assert bounded == full
            assert bounded.start <= cap

"""Property-based tests for the AvailabilityProfile.

The profile is the correctness heart of memory-aware backfilling, so
its algebra gets its own property suite: window queries must be
conservative refinements of instant queries, reservations must
subtract exactly what they claim, and earliest-start must actually be
feasible at the time it returns.

The second half targets the reservation **interval index** in
isolation: randomized insert/remove/query sequences are checked
against the brute-force oracle (``OracleProfile`` in ``_oracles.py``,
a rescan-everything specification), with time values drawn from coarse
grids so reservation starts, ends, and release times collide at the
same instant — the tie-order corners the incremental sweep must
reproduce exactly.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.cluster import Cluster, ClusterSpec, NodeSpec, PoolSpec
from repro.memdis import GlobalPoolAllocator
from repro.sched import AvailabilityProfile, FirstFitPlacement, Reservation
from repro.sched.placement import placement_for
from repro.units import GiB
from repro.workload import Job, JobState

from ._oracles import OracleProfile


def make_cluster(num_nodes=6, pool=32):
    return Cluster(ClusterSpec(
        num_nodes=num_nodes, nodes_per_rack=3,
        node=NodeSpec(local_mem=16 * GiB),
        pool=PoolSpec(global_pool=pool * GiB),
    ))


reservations = st.lists(
    st.tuples(
        st.floats(0, 1000, allow_nan=False),   # start
        st.floats(1, 500, allow_nan=False),    # duration
        st.integers(0, 5),                     # first node id
        st.integers(1, 3),                     # node count
        st.integers(0, 8),                     # pool GiB
    ),
    max_size=6,
).map(
    lambda rows: [
        Reservation(
            job_id=100 + i,
            start=start,
            end=start + duration,
            node_ids=tuple(range(first, min(first + count, 6))),
            pool_grants=(("global", pool * GiB),) if pool else (),
        )
        for i, (start, duration, first, count, pool) in enumerate(rows)
    ]
)


class TestProfileAlgebra:
    @given(reservations, st.floats(0, 1500, allow_nan=False),
           st.floats(0.5, 400, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_window_free_is_subset_of_instant_free(self, res_list, t, dur):
        cluster = make_cluster()
        profile = AvailabilityProfile(cluster, [], now=0.0,
                                      duration_of=lambda j: j.walltime)
        for res in res_list:
            profile.add_reservation(res)
        instant_free, instant_pool = profile.free_at(t)
        window_free, window_pool = profile.window_free(t, dur)
        assert window_free <= instant_free
        for pool_id, level in window_pool.items():
            assert level <= instant_pool[pool_id] + 1e-9

    @given(reservations, st.floats(0, 1500, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_zero_width_window_matches_instant(self, res_list, t):
        cluster = make_cluster()
        profile = AvailabilityProfile(cluster, [], now=0.0,
                                      duration_of=lambda j: j.walltime)
        for res in res_list:
            profile.add_reservation(res)
        instant = profile.free_at(t)
        window = profile.window_free(t, 1e-9)
        assert window[0] == instant[0]
        assert window[1] == instant[1]

    @given(reservations)
    @settings(max_examples=80, deadline=None)
    def test_far_future_everything_returns(self, res_list):
        cluster = make_cluster()
        profile = AvailabilityProfile(cluster, [], now=0.0,
                                      duration_of=lambda j: j.walltime)
        for res in res_list:
            profile.add_reservation(res)
        free, pool = profile.free_at(1e9)
        assert free == frozenset(range(6))
        assert pool["global"] == 32 * GiB

    @given(reservations, st.integers(1, 6), st.floats(1, 300),
           st.integers(0, 20))
    @settings(max_examples=80, deadline=None)
    def test_earliest_start_is_feasible_at_its_time(
        self, res_list, nodes, duration, remote_gib
    ):
        cluster = make_cluster()
        profile = AvailabilityProfile(cluster, [], now=0.0,
                                      duration_of=lambda j: j.walltime)
        for res in res_list:
            profile.add_reservation(res)
        job = Job(job_id=1, submit_time=0.0, nodes=nodes,
                  walltime=duration * 2, runtime=duration,
                  mem_per_node=16 * GiB + remote_gib * GiB)
        found = profile.earliest_start(
            job, duration, remote_gib * GiB,
            FirstFitPlacement(), GlobalPoolAllocator(),
        )
        if remote_gib * nodes > 32:
            # Demand exceeds the whole pool: never feasible.
            assert found is None
            return
        assert found is not None
        # The reservation's claims must be consistent with the window.
        free, pool_min = profile.window_free(found.start, duration)
        assert set(found.node_ids) <= free
        for pool_id, amount in found.pool_grants:
            assert amount <= pool_min[pool_id] + 1e-9

    @given(reservations, st.integers(1, 4), st.floats(1, 300))
    @settings(max_examples=60, deadline=None)
    def test_removing_reservations_never_delays(self, res_list, nodes,
                                                duration):
        """Monotonicity: a less-loaded machine starts you no later."""
        cluster = make_cluster()
        loaded = AvailabilityProfile(cluster, [], now=0.0,
                                     duration_of=lambda j: j.walltime)
        empty = AvailabilityProfile(cluster, [], now=0.0,
                                    duration_of=lambda j: j.walltime)
        for res in res_list:
            loaded.add_reservation(res)
        job = Job(job_id=1, submit_time=0.0, nodes=nodes,
                  walltime=duration * 2, runtime=duration,
                  mem_per_node=4 * GiB)
        with_res = loaded.earliest_start(
            job, duration, 0, FirstFitPlacement(), GlobalPoolAllocator())
        without = empty.earliest_start(
            job, duration, 0, FirstFitPlacement(), GlobalPoolAllocator())
        assert without is not None
        assert with_res is not None  # pool-less demand always fits eventually
        assert without.start <= with_res.start + 1e-9


# ----------------------------------------------------------------------
# interval index vs brute-force oracle
# ----------------------------------------------------------------------

#: Coarse time grid: draws collide constantly, so reservation starts,
#: reservation ends, and running-job release times stack on the same
#: instants — the adversarial corner for the incremental sweep.
GRID = [float(v) for v in range(0, 660, 60)]

grid_times = st.sampled_from(GRID)
grid_durations = st.sampled_from([0.0, 60.0, 120.0, 180.0, 300.0])


def _oracle_pair(running):
    cluster = Cluster(ClusterSpec(
        num_nodes=8, nodes_per_rack=4,
        node=NodeSpec(cores=8, local_mem=16 * GiB),
        pool=PoolSpec(rack_pool=24 * GiB, global_pool=32 * GiB),
    ))
    dur_of = lambda j: j.walltime * (1.0 + j.dilation)  # noqa: E731
    jobs = []
    for i, (start, walltime, first, count, grant) in enumerate(running):
        node_ids = list(range(first, min(first + count, 8)))
        if not node_ids:
            continue
        job = Job(job_id=900 + i, submit_time=0.0, nodes=len(node_ids),
                  walltime=walltime, runtime=walltime,
                  mem_per_node=8 * GiB)
        job.state = JobState.RUNNING
        job.start_time = start
        job.assigned_nodes = node_ids
        job.pool_grants = {"global": grant * GiB} if grant else {}
        job.dilation = 0.0
        jobs.append(job)
    new = AvailabilityProfile(cluster, jobs, now=0.0, duration_of=dur_of)
    ref = OracleProfile(cluster, jobs, now=0.0, duration_of=dur_of)
    return cluster, new, ref


running_jobs = st.lists(
    st.tuples(
        st.sampled_from([-120.0, -60.0, 0.0]),  # start_time
        grid_times.filter(lambda v: v > 0),     # walltime (release on grid)
        st.integers(0, 7), st.integers(1, 3),   # node range
        st.integers(0, 4),                      # global-pool GiB grant
    ),
    max_size=4,
)

reservation_specs = st.lists(
    st.tuples(
        grid_times,                 # start (collides with releases)
        grid_durations,             # duration (0 => same-instant start/end)
        st.integers(0, 7), st.integers(1, 4),
        st.integers(0, 6),          # pool GiB
        st.booleans(),              # rack vs global pool
    ),
    min_size=1, max_size=8,
)


def _make_reservation(i, spec):
    start, duration, first, count, pool_gib, rack = spec
    grants = ()
    if pool_gib:
        grants = ((("rack0" if rack else "global"), pool_gib * GiB),)
    return Reservation(
        job_id=100 + i,
        start=start,
        end=start + duration,
        node_ids=tuple(range(first, min(first + count, 8))),
        pool_grants=grants,
    )


def _assert_index_matches_oracle(new, ref, probes):
    assert new.breakpoints() == ref.breakpoints()
    for t in probes:
        assert new.free_at(t) == ref.free_at(t), f"free_at({t})"
        for dur in (1e-9, 60.0, 150.0, 400.0):
            assert new.window_free(t, dur) == ref.window_free(t, dur), (
                f"window_free({t}, {dur})"
            )


class TestIntervalIndexVsOracle:
    @given(running_jobs, reservation_specs, st.data())
    @settings(max_examples=120, deadline=None)
    def test_insert_remove_query_matches_oracle(self, running, specs, data):
        """Randomized add/remove sequences with colliding instants:
        every query must match the rescan-everything oracle after
        every mutation."""
        cluster, new, ref = _oracle_pair(running)
        held = []
        for i, spec in enumerate(specs):
            res = _make_reservation(i, spec)
            new.add_reservation(res)
            ref.add_reservation(res)
            held.append(res)
            if held and data.draw(st.booleans(), label=f"remove_after_{i}"):
                victim = held.pop(
                    data.draw(st.integers(0, len(held) - 1),
                              label=f"victim_{i}")
                )
                new.remove_reservation(victim)
                ref.remove_reservation(victim)
            probes = [t for t in GRID]
            probes += [t + 1e-10 for t in GRID[:4]]
            probes += [t - 1e-10 for t in GRID[1:4]]
            _assert_index_matches_oracle(new, ref, probes)

    @given(running_jobs, reservation_specs, st.integers(1, 8),
           grid_durations.filter(lambda d: d > 0),
           st.sampled_from(["first_fit", "rack_pack", "min_remote", "spread"]),
           st.integers(0, 8))
    @settings(max_examples=120, deadline=None)
    def test_earliest_start_matches_oracle(
        self, running, specs, nodes, duration, placement, remote_gib
    ):
        """The incremental sweep inside earliest_start must agree with
        the oracle's full rescan at every breakpoint — including the
        same-instant activation/retirement collisions the grid
        forces."""
        cluster, new, ref = _oracle_pair(running)
        for i, spec in enumerate(specs):
            res = _make_reservation(i, spec)
            new.add_reservation(res)
            ref.add_reservation(res)
        job = Job(job_id=1, submit_time=0.0, nodes=nodes,
                  walltime=duration * 2, runtime=duration,
                  mem_per_node=16 * GiB + remote_gib * GiB)
        pol = placement_for(placement)
        allocator = GlobalPoolAllocator()
        got = new.earliest_start(job, duration, remote_gib * GiB, pol,
                                 allocator)
        want = ref.earliest_start(job, duration, remote_gib * GiB, pol,
                                  allocator)
        assert got == want

    @given(running_jobs, reservation_specs, st.integers(1, 8),
           grid_durations.filter(lambda d: d > 0), grid_times)
    @settings(max_examples=100, deadline=None)
    def test_bounded_probe_matches_oracle_verdict(
        self, running, specs, nodes, duration, cap
    ):
        """not_after probes (the plan-cache replay primitive) must
        equal 'scan fully, then compare the start against the cap'."""
        cluster, new, ref = _oracle_pair(running)
        for i, spec in enumerate(specs):
            res = _make_reservation(i, spec)
            new.add_reservation(res)
            ref.add_reservation(res)
        job = Job(job_id=1, submit_time=0.0, nodes=nodes,
                  walltime=duration * 2, runtime=duration,
                  mem_per_node=8 * GiB)
        pol = FirstFitPlacement()
        allocator = GlobalPoolAllocator()
        bounded = new.earliest_start(job, duration, 0, pol, allocator,
                                     not_after=cap)
        full = ref.earliest_start(job, duration, 0, pol, allocator)
        if bounded is None:
            assert full is None or full.start > cap
        else:
            assert bounded == full
            assert bounded.start <= cap


# ----------------------------------------------------------------------
# divergence hunt: interleaved fold / mutate / scan sequences
# ----------------------------------------------------------------------

#: Fold release instants: on the same colliding grid as the
#: reservation edges, plus ``inf`` — a job with no walltime bound puts
#: an infinite float into the breakpoint grid, which the vectorized
#: kernel must carry without poisoning searchsorted or prefix sweeps.
_FOLD_ENDS = [float(v) for v in range(60, 660, 60)] + [math.inf]


def _fuzz_cluster():
    return Cluster(ClusterSpec(
        num_nodes=8, nodes_per_rack=4,
        node=NodeSpec(cores=8, local_mem=16 * GiB),
        pool=PoolSpec(rack_pool=24 * GiB, global_pool=32 * GiB),
    ))


def _fuzz_dur(job):
    return job.walltime


def _start_job(cluster, job_id, node_ids, grants, start, est_end):
    """Allocate ``node_ids`` on the live cluster and return the
    matching RUNNING job, releasing at exactly ``est_end``."""
    job = Job(job_id=job_id, submit_time=0.0, nodes=len(node_ids),
              walltime=est_end - start, runtime=est_end - start,
              mem_per_node=8 * GiB)
    job.state = JobState.RUNNING
    job.start_time = start
    job.assigned_nodes = list(node_ids)
    job.pool_grants = dict(grants)
    job.dilation = 0.0
    cluster.allocate_nodes(job_id, node_ids, 8 * GiB)
    if grants:
        cluster.allocate_pool(job_id, grants)
    return job


def _draw_grants(data, cluster, label):
    grants = {}
    for pool in cluster.all_pools():
        gib = data.draw(st.integers(0, 4), label=f"{label}_{pool.pool_id}")
        amount = min(pool.free, gib * GiB)
        if amount > 0:
            grants[pool.pool_id] = amount
    return grants


def _fresh_pair(cluster, running, held):
    """Rebuild both references from the current world state, re-adding
    the held reservations in their surviving insertion order."""
    fresh = AvailabilityProfile(cluster, running, 0.0, _fuzz_dur)
    ref = OracleProfile(cluster, running, 0.0, _fuzz_dur)
    for res in held:
        fresh.add_reservation(res)
        ref.add_reservation(res)
    return fresh, ref


def _assert_fold_state(cluster, running, held, profile):
    """The fold-patched profile AND its live cursor must be
    bit-identical to a from-scratch rebuild and the oracle."""
    fresh, ref = _fresh_pair(cluster, running, held)
    assert profile.breakpoints() == fresh.breakpoints() == ref.breakpoints()
    probes = list(GRID)
    probes += [t + 1e-10 for t in GRID[:4]]
    probes += [t - 1e-10 for t in GRID[1:4]]
    for t in probes:
        assert profile.free_at(t) == fresh.free_at(t) == ref.free_at(t), (
            f"free_at({t})"
        )
        for dur in (1e-9, 60.0, 400.0):
            assert (
                profile.window_free(t, dur)
                == fresh.window_free(t, dur)
                == ref.window_free(t, dur)
            ), f"window_free({t}, {dur})"
    cursor = profile.sweep_cursor()
    refc = fresh.sweep_cursor()
    assert list(cursor._times) == list(refc._times)
    last = len(refc._times) - 1
    cursor._materialize_to(last)
    refc._materialize_to(last)
    assert list(cursor._free) == list(refc._free)
    assert list(cursor._counts) == list(refc._counts)
    assert list(cursor._k) == list(refc._k)


_OPS = ("start", "release", "add", "remove", "truncate", "scan")


class TestFoldDivergenceHunt:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_interleaved_fold_sequences_match_oracle(self, data):
        """Drive one profile + live cursor through interleaved
        apply_start / apply_release / add / remove / truncate /
        earliest_start sequences on the colliding grid (zero-length
        reservations and ``inf`` release times included); after every
        mutation the whole state must equal a fresh rebuild and the
        rescan-everything oracle."""
        cluster = _fuzz_cluster()
        running = []
        next_id = 900
        for i in range(data.draw(st.integers(0, 3), label="initial_jobs")):
            free = list(cluster.sorted_free_ids())
            if not free:
                break
            count = data.draw(st.integers(1, min(3, len(free))),
                              label=f"init_count_{i}")
            start = data.draw(st.sampled_from([-120.0, -60.0, 0.0]),
                              label=f"init_start_{i}")
            est_end = data.draw(st.sampled_from(_FOLD_ENDS),
                                label=f"init_end_{i}")
            grants = _draw_grants(data, cluster, f"init_grant_{i}")
            running.append(_start_job(cluster, next_id, free[:count],
                                      grants, start, est_end))
            next_id += 1
        profile = AvailabilityProfile(cluster, running, 0.0, _fuzz_dur)
        held = []
        next_res = 0
        ops = data.draw(st.lists(st.sampled_from(_OPS),
                                 min_size=3, max_size=10), label="ops")
        for step, op in enumerate(ops):
            # A random materialized depth: folds must be exact over
            # full, partial, and empty prefixes alike.
            cursor = profile.sweep_cursor()
            depth = data.draw(st.integers(0, len(cursor._times)),
                              label=f"depth_{step}")
            if depth:
                cursor._materialize_to(depth - 1)
            if op == "start":
                free = list(cluster.sorted_free_ids())
                if not free:
                    continue
                count = data.draw(st.integers(1, min(3, len(free))),
                                  label=f"count_{step}")
                est_end = data.draw(st.sampled_from(_FOLD_ENDS),
                                    label=f"end_{step}")
                grants = _draw_grants(data, cluster, f"grant_{step}")
                job = _start_job(cluster, next_id, free[:count], grants,
                                 0.0, est_end)
                next_id += 1
                running.append(job)
                profile.apply_start(job.assigned_nodes, job.pool_grants,
                                    est_end)
            elif op == "release":
                if not running:
                    continue
                victim = running.pop(
                    data.draw(st.integers(0, len(running) - 1),
                              label=f"victim_{step}")
                )
                cluster.release_nodes(victim.job_id, victim.assigned_nodes)
                cluster.release_pool(victim.job_id)
                assert profile.apply_release(
                    victim.assigned_nodes, victim.pool_grants,
                    victim.start_time + victim.walltime,
                )
            elif op == "add":
                spec = data.draw(
                    st.tuples(grid_times, grid_durations,
                              st.integers(0, 7), st.integers(1, 4),
                              st.integers(0, 6), st.booleans()),
                    label=f"spec_{step}",
                )
                res = _make_reservation(next_res, spec)
                next_res += 1
                profile.add_reservation(res)
                held.append(res)
            elif op == "remove":
                if not held:
                    continue
                victim = held.pop(
                    data.draw(st.integers(0, len(held) - 1),
                              label=f"res_victim_{step}")
                )
                profile.remove_reservation(victim)
            elif op == "truncate":
                if not held:
                    continue
                keep = data.draw(st.integers(0, len(held)),
                                 label=f"keep_{step}")
                profile.truncate_reservations(keep)
                del held[keep:]
            else:  # scan
                nodes = data.draw(st.integers(1, 8), label=f"nodes_{step}")
                dur = data.draw(grid_durations.filter(lambda d: d > 0),
                                label=f"dur_{step}")
                remote = data.draw(st.integers(0, 6), label=f"remote_{step}")
                job = Job(job_id=1, submit_time=0.0, nodes=nodes,
                          walltime=dur * 2, runtime=dur,
                          mem_per_node=16 * GiB + remote * GiB)
                _, ref = _fresh_pair(cluster, running, held)
                got = profile.earliest_start(
                    job, dur, remote * GiB,
                    FirstFitPlacement(), GlobalPoolAllocator())
                want = ref.earliest_start(
                    job, dur, remote * GiB,
                    FirstFitPlacement(), GlobalPoolAllocator())
                assert got == want, f"scan at step {step}"
            _assert_fold_state(cluster, running, held, profile)


class TestFoldRegressions:
    """Named pins for the fold-divergence corners the hunt guards.

    Each test is a deterministic instance of a trap class the
    interleaved fuzz above explores statistically — kept separate so a
    reintroduced bug names its failure mode instead of a shrunk blob.
    """

    def test_release_fold_drops_phantom_breakpoint(self):
        """Folding a completion must delete its grid time from the
        live cursor when nothing else breaks there: a phantom
        candidate instant between true breakpoints can change which
        window earliest_start accepts."""
        cluster = _fuzz_cluster()
        a = _start_job(cluster, 900, [0, 1], {}, 0.0, 120.0)
        b = _start_job(cluster, 901, [2], {}, 0.0, 240.0)
        running = [a, b]
        profile = AvailabilityProfile(cluster, running, 0.0, _fuzz_dur)
        cursor = profile.sweep_cursor()
        cursor._materialize_to(len(cursor._times) - 1)
        running.remove(a)
        cluster.release_nodes(a.job_id, a.assigned_nodes)
        assert profile.apply_release(a.assigned_nodes, {}, 120.0)
        assert 120.0 not in profile.sweep_cursor()._times
        _assert_fold_state(cluster, running, [], profile)

    def test_release_fold_restores_only_unclaimed_nodes(self):
        """A release whose nodes overlap an active reservation claim
        must restore only the unclaimed part of the set into the
        materialized states."""
        cluster = _fuzz_cluster()
        a = _start_job(cluster, 900, [0, 1], {}, 0.0, 300.0)
        running = [a]
        profile = AvailabilityProfile(cluster, running, 0.0, _fuzz_dur)
        res = Reservation(job_id=100, start=60.0, end=600.0,
                          node_ids=(0,), pool_grants=())
        profile.add_reservation(res)
        cursor = profile.sweep_cursor()
        cursor._materialize_to(len(cursor._times) - 1)
        running.remove(a)
        cluster.release_nodes(a.job_id, a.assigned_nodes)
        assert profile.apply_release(a.assigned_nodes, {}, 300.0)
        free, _ = profile.free_at(120.0)
        assert 0 not in free and 1 in free
        _assert_fold_state(cluster, running, [res], profile)

    def test_inf_walltime_survives_fold(self):
        """An unbounded job puts ``inf`` into the float grid; folding
        a finite completion around it must keep every state exact."""
        cluster = _fuzz_cluster()
        forever = _start_job(cluster, 900, [0], {}, 0.0, math.inf)
        a = _start_job(cluster, 901, [1, 2], {}, -60.0, 120.0)
        running = [forever, a]
        profile = AvailabilityProfile(cluster, running, 0.0, _fuzz_dur)
        cursor = profile.sweep_cursor()
        cursor._materialize_to(len(cursor._times) - 1)
        assert math.inf in cursor._times
        running.remove(a)
        cluster.release_nodes(a.job_id, a.assigned_nodes)
        assert profile.apply_release(a.assigned_nodes, {}, 120.0)
        assert math.inf in profile.sweep_cursor()._times
        _assert_fold_state(cluster, running, [], profile)

    def test_zero_length_reservation_keeps_fold_instant(self):
        """A zero-length reservation pins its instant as a breakpoint:
        folding a release at the same instant must keep the grid time
        (the reservation edge still breaks there) while removing the
        release entry."""
        cluster = _fuzz_cluster()
        a = _start_job(cluster, 900, [0, 1], {}, 0.0, 120.0)
        b = _start_job(cluster, 901, [2], {}, 0.0, 240.0)
        running = [a, b]
        profile = AvailabilityProfile(cluster, running, 0.0, _fuzz_dur)
        res = Reservation(job_id=100, start=120.0, end=120.0,
                          node_ids=(3,), pool_grants=())
        profile.add_reservation(res)
        cursor = profile.sweep_cursor()
        cursor._materialize_to(len(cursor._times) - 1)
        running.remove(a)
        cluster.release_nodes(a.job_id, a.assigned_nodes)
        assert profile.apply_release(a.assigned_nodes, {}, 120.0)
        assert 120.0 in profile.sweep_cursor()._times
        _assert_fold_state(cluster, running, [res], profile)

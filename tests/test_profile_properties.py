"""Property-based tests for the AvailabilityProfile.

The profile is the correctness heart of memory-aware backfilling, so
its algebra gets its own property suite: window queries must be
conservative refinements of instant queries, reservations must
subtract exactly what they claim, and earliest-start must actually be
feasible at the time it returns.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.cluster import Cluster, ClusterSpec, NodeSpec, PoolSpec
from repro.memdis import GlobalPoolAllocator
from repro.sched import AvailabilityProfile, FirstFitPlacement, Reservation
from repro.units import GiB
from repro.workload import Job, JobState


def make_cluster(num_nodes=6, pool=32):
    return Cluster(ClusterSpec(
        num_nodes=num_nodes, nodes_per_rack=3,
        node=NodeSpec(local_mem=16 * GiB),
        pool=PoolSpec(global_pool=pool * GiB),
    ))


reservations = st.lists(
    st.tuples(
        st.floats(0, 1000, allow_nan=False),   # start
        st.floats(1, 500, allow_nan=False),    # duration
        st.integers(0, 5),                     # first node id
        st.integers(1, 3),                     # node count
        st.integers(0, 8),                     # pool GiB
    ),
    max_size=6,
).map(
    lambda rows: [
        Reservation(
            job_id=100 + i,
            start=start,
            end=start + duration,
            node_ids=tuple(range(first, min(first + count, 6))),
            pool_grants=(("global", pool * GiB),) if pool else (),
        )
        for i, (start, duration, first, count, pool) in enumerate(rows)
    ]
)


class TestProfileAlgebra:
    @given(reservations, st.floats(0, 1500, allow_nan=False),
           st.floats(0.5, 400, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_window_free_is_subset_of_instant_free(self, res_list, t, dur):
        cluster = make_cluster()
        profile = AvailabilityProfile(cluster, [], now=0.0,
                                      duration_of=lambda j: j.walltime)
        for res in res_list:
            profile.add_reservation(res)
        instant_free, instant_pool = profile.free_at(t)
        window_free, window_pool = profile.window_free(t, dur)
        assert window_free <= instant_free
        for pool_id, level in window_pool.items():
            assert level <= instant_pool[pool_id] + 1e-9

    @given(reservations, st.floats(0, 1500, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_zero_width_window_matches_instant(self, res_list, t):
        cluster = make_cluster()
        profile = AvailabilityProfile(cluster, [], now=0.0,
                                      duration_of=lambda j: j.walltime)
        for res in res_list:
            profile.add_reservation(res)
        instant = profile.free_at(t)
        window = profile.window_free(t, 1e-9)
        assert window[0] == instant[0]
        assert window[1] == instant[1]

    @given(reservations)
    @settings(max_examples=80, deadline=None)
    def test_far_future_everything_returns(self, res_list):
        cluster = make_cluster()
        profile = AvailabilityProfile(cluster, [], now=0.0,
                                      duration_of=lambda j: j.walltime)
        for res in res_list:
            profile.add_reservation(res)
        free, pool = profile.free_at(1e9)
        assert free == frozenset(range(6))
        assert pool["global"] == 32 * GiB

    @given(reservations, st.integers(1, 6), st.floats(1, 300),
           st.integers(0, 20))
    @settings(max_examples=80, deadline=None)
    def test_earliest_start_is_feasible_at_its_time(
        self, res_list, nodes, duration, remote_gib
    ):
        cluster = make_cluster()
        profile = AvailabilityProfile(cluster, [], now=0.0,
                                      duration_of=lambda j: j.walltime)
        for res in res_list:
            profile.add_reservation(res)
        job = Job(job_id=1, submit_time=0.0, nodes=nodes,
                  walltime=duration * 2, runtime=duration,
                  mem_per_node=16 * GiB + remote_gib * GiB)
        found = profile.earliest_start(
            job, duration, remote_gib * GiB,
            FirstFitPlacement(), GlobalPoolAllocator(),
        )
        if remote_gib * nodes > 32:
            # Demand exceeds the whole pool: never feasible.
            assert found is None
            return
        assert found is not None
        # The reservation's claims must be consistent with the window.
        free, pool_min = profile.window_free(found.start, duration)
        assert set(found.node_ids) <= free
        for pool_id, amount in found.pool_grants:
            assert amount <= pool_min[pool_id] + 1e-9

    @given(reservations, st.integers(1, 4), st.floats(1, 300))
    @settings(max_examples=60, deadline=None)
    def test_removing_reservations_never_delays(self, res_list, nodes,
                                                duration):
        """Monotonicity: a less-loaded machine starts you no later."""
        cluster = make_cluster()
        loaded = AvailabilityProfile(cluster, [], now=0.0,
                                     duration_of=lambda j: j.walltime)
        empty = AvailabilityProfile(cluster, [], now=0.0,
                                    duration_of=lambda j: j.walltime)
        for res in res_list:
            loaded.add_reservation(res)
        job = Job(job_id=1, submit_time=0.0, nodes=nodes,
                  walltime=duration * 2, runtime=duration,
                  mem_per_node=4 * GiB)
        with_res = loaded.earliest_start(
            job, duration, 0, FirstFitPlacement(), GlobalPoolAllocator())
        without = empty.earliest_start(
            job, duration, 0, FirstFitPlacement(), GlobalPoolAllocator())
        assert without is not None
        assert with_res is not None  # pool-less demand always fits eventually
        assert without.start <= with_res.start + 1e-9

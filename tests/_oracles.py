"""Brute-force availability oracle for the differential suites.

:class:`OracleProfile` is the executable *specification* of what the
optimized :class:`repro.sched.profile.AvailabilityProfile` must
compute.  It holds no derived state at all — every query walks every
release and every reservation from scratch — so there is nothing to
get incrementally wrong: correctness is readable off the query bodies.

The semantics it pins (shared with the optimized implementation):

* **Overrun grace** — a running job whose estimated end is already in
  the past releases at ``now + _OVERRUN_GRACE``, never in the past.
* **Epsilon bands** — a release counts at ``t`` when its time is
  ``<= t + _EPS``; a reservation occupies ``t`` when
  ``start <= t + _EPS and t < end - _EPS``; window sweeps consider
  only events *strictly* inside ``(start + _EPS, end - _EPS)``.
* **Tie order** — same-instant pool events apply in a stable order
  (reservations in insertion order, start before end, then releases in
  time order), and the running minimum is updated after *each* event,
  so a +X/-X collision at one instant still dips the minimum.

The suites that anchor on it compare it query-for-query against the
optimized profile (``test_profile_equivalence.py``,
``test_profile_properties.py``, ``test_release_folding.py``).  The
end-to-end scheduler suites no longer run an oracle at all — they
compare against pinned golden digests (see ``tests/_golden.py``).
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Tuple,
)

from repro.sched.profile import Reservation
from repro.workload.job import Job

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster
    from repro.memdis.allocator import PoolAllocator
    from repro.sched.placement import PlacementPolicy

_OVERRUN_GRACE = 1.0
_EPS = 1e-9


class _Release(NamedTuple):
    time: float
    node_ids: Tuple[int, ...]
    grants: Dict[str, int]


class OracleProfile:
    """Rescan-everything availability profile: the reference semantics."""

    def __init__(
        self,
        cluster: "Cluster",
        running: Iterable[Job],
        now: float,
        duration_of: Callable[[Job], float],
    ) -> None:
        self._cluster = cluster
        self._now = now
        self._free_now: FrozenSet[int] = frozenset(
            node.node_id for node in cluster.free_nodes()
        )
        self._pool_now: Dict[str, int] = {
            pool.pool_id: pool.free for pool in cluster.all_pools()
        }
        releases: List[_Release] = []
        for job in running:
            if job.start_time is None:
                continue
            est_end = job.start_time + duration_of(job)
            if est_end <= now:
                # Overran its estimate: grant it a grace period rather
                # than releasing in the past.
                est_end = now + _OVERRUN_GRACE
            releases.append(
                _Release(est_end, tuple(job.assigned_nodes), dict(job.pool_grants))
            )
        releases.sort(key=lambda release: release.time)
        self._releases: List[_Release] = releases
        # Insertion order is semantically significant: same-instant
        # pool events tie-break by it (see window_free).
        self._reservations: List[Reservation] = []

    # -- mutation ------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    @property
    def reservations(self) -> List[Reservation]:
        return list(self._reservations)

    def add_reservation(self, reservation: Reservation) -> Reservation:
        self._reservations.append(reservation)
        return reservation

    def remove_reservation(self, reservation: Reservation) -> None:
        self._reservations.remove(reservation)

    # -- queries -------------------------------------------------------
    def breakpoints(self, after: Optional[float] = None) -> List[float]:
        """Every instant availability can change, from ``now`` (or
        ``after``) on: release times plus reservation edges."""
        horizon = self._now if after is None else max(after, self._now)
        times = {horizon}
        times.update(
            release.time for release in self._releases if release.time > horizon
        )
        for res in self._reservations:
            times.update(edge for edge in (res.start, res.end) if edge > horizon)
        return sorted(times)

    def free_at(self, time: float) -> Tuple[FrozenSet[int], Dict[str, int]]:
        free = set(self._free_now)
        pool = dict(self._pool_now)
        for release in self._releases:
            if release.time <= time + _EPS:
                free.update(release.node_ids)
                for pool_id, amount in release.grants.items():
                    pool[pool_id] = pool.get(pool_id, 0) + amount
        for res in self._reservations:
            if res.start <= time + _EPS and time < res.end - _EPS:
                free.difference_update(res.node_ids)
                for pool_id, amount in res.pool_grants:
                    pool[pool_id] = pool.get(pool_id, 0) - amount
        return frozenset(free), pool

    def window_free(
        self, start: float, duration: float
    ) -> Tuple[FrozenSet[int], Dict[str, int]]:
        """Nodes free for the whole window and the per-pool minimum
        level anywhere inside it."""
        end = start + duration
        free, pool_start = self.free_at(start)
        pool_min = dict(pool_start)
        if not self._reservations:
            return free, pool_min

        def inside(instant: float) -> bool:
            return start + _EPS < instant < end - _EPS

        # A reservation starting mid-window claims its nodes for part
        # of the window, so they are not free for the whole of it.
        claimed = set()
        events: List[Tuple[float, Dict[str, int], int]] = []
        for res in self._reservations:
            if inside(res.start):
                claimed.update(res.node_ids)
                events.append((res.start, dict(res.pool_grants), -1))
            if inside(res.end):
                events.append((res.end, dict(res.pool_grants), +1))
        for release in self._releases:
            if release.grants and inside(release.time):
                events.append((release.time, release.grants, +1))
        if claimed:
            free = frozenset(free - claimed)
        # Stable sort: same-instant events keep the order built above
        # (reservation insertion order, then releases), and the minimum
        # tracks every intermediate level — a -X before a +X at one
        # instant dips it on purpose.
        level = dict(pool_start)
        for _, grants, sign in sorted(events, key=lambda event: event[0]):
            for pool_id, amount in grants.items():
                level[pool_id] = level.get(pool_id, 0) + sign * amount
                if level[pool_id] < pool_min.get(pool_id, 0):
                    pool_min[pool_id] = level[pool_id]
        return free, pool_min

    def earliest_start(
        self,
        job: Job,
        duration: float,
        remote_per_node: int,
        placement: "PlacementPolicy",
        allocator: "PoolAllocator",
        after: Optional[float] = None,
        memory_aware: bool = True,
    ) -> Optional[Reservation]:
        """First breakpoint where the job fits for its whole window."""
        for t in self.breakpoints(after=after):
            free, pool_min = self.window_free(t, duration)
            if len(free) < job.nodes:
                continue
            node_ids = placement.select(
                self._cluster, free, job.nodes, remote_per_node, pool_min
            )
            if node_ids is None:
                continue
            if not memory_aware or remote_per_node == 0:
                plan: Optional[Dict[str, int]] = {}
            else:
                plan = allocator.plan(
                    self._cluster, node_ids, remote_per_node,
                    free_override=pool_min,
                )
                if plan is None:
                    continue
            return Reservation(
                job_id=job.job_id,
                start=t,
                end=t + duration,
                node_ids=tuple(node_ids),
                pool_grants=tuple(sorted((plan or {}).items())),
            )
        return None

"""Tests for node failure injection."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec, NodeState, PoolSpec
from repro.engine import (
    FailureEvent,
    SchedulerSimulation,
    audit_result,
    exponential_failure_trace,
)
from repro.errors import ConfigurationError
from repro.memdis import NoPenalty
from repro.sched import Scheduler
from repro.sim import RandomStreams
from repro.units import GiB
from repro.workload import JobState
from repro.workload.reference import generate_reference_jobs

from .conftest import make_job


def cluster4(global_pool=0):
    spec = ClusterSpec(
        name="f4",
        num_nodes=4,
        nodes_per_rack=4,
        node=NodeSpec(cores=8, local_mem=16 * GiB),
        pool=PoolSpec(global_pool=global_pool),
    )
    return Cluster(spec)


class TestFailureEvent:
    def test_validation(self):
        FailureEvent(10.0, 0, 60.0)
        with pytest.raises(ConfigurationError):
            FailureEvent(-1.0, 0, 60.0)
        with pytest.raises(ConfigurationError):
            FailureEvent(1.0, -1, 60.0)
        with pytest.raises(ConfigurationError):
            FailureEvent(1.0, 0, 0.0)

    def test_trace_out_of_range_node_rejected(self):
        with pytest.raises(ConfigurationError):
            SchedulerSimulation(
                cluster4(), Scheduler(penalty=NoPenalty()),
                [make_job(job_id=1)],
                failures=[FailureEvent(1.0, 99, 60.0)],
            )


class TestExponentialTrace:
    def test_deterministic(self):
        a = exponential_failure_trace(8, 1e6, mtbf=2e5, mean_repair=3600,
                                      streams=RandomStreams(3))
        b = exponential_failure_trace(8, 1e6, mtbf=2e5, mean_repair=3600,
                                      streams=RandomStreams(3))
        assert a == b

    def test_within_horizon_and_sorted(self):
        trace = exponential_failure_trace(8, 1e6, mtbf=1e5, mean_repair=3600,
                                          streams=RandomStreams(1))
        assert all(0 <= e.time < 1e6 for e in trace)
        times = [e.time for e in trace]
        assert times == sorted(times)

    def test_no_overlapping_failures_per_node(self):
        trace = exponential_failure_trace(4, 1e6, mtbf=5e4, mean_repair=7200,
                                          streams=RandomStreams(2))
        by_node: dict[int, float] = {}
        for event in trace:
            last_up = by_node.get(event.node_id, 0.0)
            assert event.time >= last_up
            by_node[event.node_id] = event.time + event.repair_time

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            exponential_failure_trace(0, 1e6, 1e5, 3600, RandomStreams(0))
        with pytest.raises(ConfigurationError):
            exponential_failure_trace(4, 0, 1e5, 3600, RandomStreams(0))
        with pytest.raises(ConfigurationError):
            exponential_failure_trace(4, 1e6, 0, 3600, RandomStreams(0))


class TestFailureSemantics:
    def test_idle_node_failure_shrinks_machine(self):
        cluster = cluster4()
        # Job needs all 4 nodes; node 3 fails at t=5 for 100s.
        job = make_job(job_id=1, submit=10.0, nodes=4, runtime=50.0,
                       walltime=50.0, mem=1 * GiB)
        result = SchedulerSimulation(
            cluster, Scheduler(penalty=NoPenalty()), [job],
            failures=[FailureEvent(5.0, 3, 100.0)],
        ).run()
        audit_result(result)
        # Machine has only 3 nodes until repair at t=105.
        assert job.start_time == pytest.approx(105.0)
        assert job.state is JobState.COMPLETED

    def test_busy_node_failure_kills_job(self):
        cluster = cluster4(global_pool=8 * GiB)
        victim = make_job(job_id=1, submit=0.0, nodes=2, runtime=100.0,
                          walltime=100.0, mem=18 * GiB)  # holds pool too
        bystander = make_job(job_id=2, submit=0.0, nodes=2, runtime=100.0,
                             walltime=100.0, mem=1 * GiB)
        result = SchedulerSimulation(
            cluster, Scheduler(penalty=NoPenalty()), [victim, bystander],
            failures=[FailureEvent(30.0, 0, 1000.0)],
        ).run()
        audit_result(result)
        assert victim.state is JobState.KILLED
        assert victim.kill_reason == "node_failure"
        assert victim.end_time == pytest.approx(30.0)
        # Its pool grant was returned at the kill instant.
        series = result.ledger.pool_occupancy_series("global")
        assert series[-1] == (30.0, 0)
        # The bystander on other nodes is unaffected.
        assert bystander.state is JobState.COMPLETED
        assert bystander.end_time == pytest.approx(100.0)

    def test_failed_node_not_reused_until_repair(self):
        cluster = cluster4()
        j1 = make_job(job_id=1, submit=0.0, nodes=4, runtime=50.0,
                      walltime=50.0, mem=1 * GiB)
        j2 = make_job(job_id=2, submit=1.0, nodes=4, runtime=50.0,
                      walltime=50.0, mem=1 * GiB)
        result = SchedulerSimulation(
            cluster, Scheduler(penalty=NoPenalty()), [j1, j2],
            failures=[FailureEvent(10.0, 0, 500.0)],
        ).run()
        audit_result(result)
        # j1 killed at 10; j2 needs 4 nodes, node 0 down until 510.
        assert j1.state is JobState.KILLED
        assert j2.start_time == pytest.approx(510.0)

    def test_smaller_jobs_flow_around_failure(self):
        cluster = cluster4()
        j1 = make_job(job_id=1, submit=0.0, nodes=4, runtime=50.0,
                      walltime=50.0, mem=1 * GiB)
        j2 = make_job(job_id=2, submit=1.0, nodes=3, runtime=50.0,
                      walltime=50.0, mem=1 * GiB)
        result = SchedulerSimulation(
            cluster, Scheduler(penalty=NoPenalty()), [j1, j2],
            failures=[FailureEvent(10.0, 0, 10_000.0)],
        ).run()
        audit_result(result)
        # After j1 dies at t=10, three nodes remain: j2 runs on them.
        assert j2.start_time == pytest.approx(10.0)
        assert j2.state is JobState.COMPLETED
        assert 0 not in j2.assigned_nodes

    def test_double_failure_while_down_absorbed(self):
        cluster = cluster4()
        job = make_job(job_id=1, submit=0.0, nodes=1, runtime=20.0,
                       walltime=20.0, mem=1 * GiB)
        result = SchedulerSimulation(
            cluster, Scheduler(penalty=NoPenalty()), [job],
            failures=[
                FailureEvent(5.0, 3, 100.0),
                FailureEvent(50.0, 3, 100.0),  # node 3 still down
            ],
        ).run()
        audit_result(result)
        assert job.state is JobState.COMPLETED

    def test_failure_spanning_sim_start_applies(self):
        cluster = cluster4()
        job = make_job(job_id=1, submit=100.0, nodes=4, runtime=10.0,
                       walltime=20.0, mem=1 * GiB)
        result = SchedulerSimulation(
            cluster, Scheduler(penalty=NoPenalty()), [job],
            failures=[FailureEvent(0.0, 2, 200.0)],
        ).run()
        audit_result(result)
        # Node 2 is down from before the sim starts until the absolute
        # repair time 0 + 200.
        assert job.start_time == pytest.approx(200.0)

    def test_failure_repaired_before_sim_start_is_noop(self):
        cluster = cluster4()
        job = make_job(job_id=1, submit=100.0, nodes=4, runtime=10.0,
                       walltime=20.0, mem=1 * GiB)
        result = SchedulerSimulation(
            cluster, Scheduler(penalty=NoPenalty()), [job],
            failures=[FailureEvent(0.0, 2, 50.0)],  # repaired at t=50
        ).run()
        audit_result(result)
        assert job.start_time == pytest.approx(100.0)

    def test_failure_workload_audits_clean(self):
        jobs = generate_reference_jobs(
            "W-MIX", seed=5, num_jobs=150, cluster_nodes=16,
            max_mem_per_node=64 * GiB, target_load=0.8,
        )
        spec = ClusterSpec(
            num_nodes=16, nodes_per_rack=8,
            node=NodeSpec(local_mem=32 * GiB),
            pool=PoolSpec(global_pool=512 * GiB),
        )
        horizon = jobs[-1].submit_time + 48 * 3600
        trace = exponential_failure_trace(
            16, horizon, mtbf=horizon / 4, mean_repair=2 * 3600,
            streams=RandomStreams(9),
        )
        result = SchedulerSimulation(
            Cluster(spec), Scheduler(penalty=NoPenalty()), jobs,
            failures=trace,
        ).run()
        audit_result(result)
        failed_kills = [j for j in result.killed
                        if j.kill_reason == "node_failure"]
        # With a quarter-horizon MTBF per node some jobs must die.
        assert len(trace) > 0
        states = {j.state for j in result.jobs}
        assert states <= {JobState.COMPLETED, JobState.KILLED,
                          JobState.REJECTED}
        # Bookkeeping survived: every node ends IDLE or DOWN, pools empty.
        cluster_end = result.ledger.outstanding_remote()
        assert cluster_end == 0
        assert failed_kills is not None  # informational; may be empty

    def test_bigger_jobs_die_more(self):
        """The classic failure-scheduling observation: wide jobs hit
        more hardware, so they die more often."""
        jobs = generate_reference_jobs(
            "W-MIX", seed=8, num_jobs=400, cluster_nodes=16,
            max_mem_per_node=32 * GiB, target_load=0.7,
        )
        spec = ClusterSpec(num_nodes=16, nodes_per_rack=8,
                           node=NodeSpec(local_mem=32 * GiB))
        horizon = jobs[-1].submit_time + 96 * 3600
        trace = exponential_failure_trace(
            16, horizon, mtbf=horizon / 8, mean_repair=3600,
            streams=RandomStreams(4),
        )
        result = SchedulerSimulation(
            Cluster(spec), Scheduler(penalty=NoPenalty()), jobs,
            failures=trace,
        ).run()
        audit_result(result)
        died = [j for j in result.killed if j.kill_reason == "node_failure"]
        survived = result.completed
        if died and survived:
            mean_nodes_died = sum(j.nodes for j in died) / len(died)
            mean_nodes_ok = sum(j.nodes for j in survived) / len(survived)
            assert mean_nodes_died > mean_nodes_ok * 0.8

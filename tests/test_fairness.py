"""Tests for fair-share scheduling, user statistics, the dominant-share
policy, diurnal arrivals, and the Gantt renderer."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec, PoolSpec
from repro.engine import SchedulerSimulation, audit_result
from repro.errors import ConfigurationError
from repro.memdis import NoPenalty
from repro.metrics import jain_index, per_user_stats, render_gantt
from repro.sched import (
    DominantSharePolicy,
    FairSharePolicy,
    Scheduler,
    UsageTracker,
    queue_policy_for,
)
from repro.sim import RandomStreams
from repro.units import GiB, HOUR
from repro.workload import JobState, SyntheticWorkload, WorkloadParams
from repro.workload.models import Exponential

from .conftest import make_job


class TestUsageTracker:
    def test_charge_and_read(self):
        tracker = UsageTracker(half_life=HOUR)
        tracker.charge("alice", 100.0, at=0.0)
        assert tracker.usage_of("alice", 0.0) == pytest.approx(100.0)
        assert tracker.usage_of("bob", 0.0) == 0.0

    def test_decay_half_life(self):
        tracker = UsageTracker(half_life=HOUR)
        tracker.charge("alice", 100.0, at=0.0)
        assert tracker.usage_of("alice", HOUR) == pytest.approx(50.0)
        assert tracker.usage_of("alice", 2 * HOUR) == pytest.approx(25.0)

    def test_charges_accumulate_with_decay(self):
        tracker = UsageTracker(half_life=HOUR)
        tracker.charge("alice", 100.0, at=0.0)
        tracker.charge("alice", 100.0, at=HOUR)
        assert tracker.usage_of("alice", HOUR) == pytest.approx(150.0)

    def test_snapshot(self):
        tracker = UsageTracker(half_life=HOUR)
        tracker.charge("a", 10.0, at=0.0)
        tracker.charge("b", 20.0, at=0.0)
        snap = tracker.snapshot(at=HOUR)
        assert snap["a"] == pytest.approx(5.0)
        assert snap["b"] == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UsageTracker(half_life=0)
        tracker = UsageTracker()
        with pytest.raises(ConfigurationError):
            tracker.charge("a", -1.0, at=0.0)


class TestFairSharePolicy:
    def test_light_user_jumps_heavy_user(self):
        policy = FairSharePolicy(half_life=24 * HOUR)
        # heavy has consumed a lot recently.
        policy.tracker.charge("heavy", 1e6, at=0.0)
        a = make_job(job_id=1, submit=0.0, user="heavy")
        b = make_job(job_id=2, submit=10.0, user="light")
        ordered = policy.order([a, b], now=100.0)
        assert [j.user for j in ordered] == ["light", "heavy"]

    def test_falls_back_to_fcfs_within_user(self):
        policy = FairSharePolicy()
        a = make_job(job_id=1, submit=0.0, user="u")
        b = make_job(job_id=2, submit=10.0, user="u")
        ordered = policy.order([b, a], now=100.0)
        assert [j.job_id for j in ordered] == [1, 2]

    def test_watched_jobs_charged_once_terminal(self):
        policy = FairSharePolicy(half_life=1e12)  # effectively no decay
        job = make_job(job_id=1, submit=0.0, nodes=2, user="u")
        policy.order([job], now=0.0)  # watched while pending
        job.state = JobState.COMPLETED
        job.start_time, job.end_time = 0.0, 100.0
        policy.order([], now=200.0)  # settles
        assert policy.tracker.usage_of("u", 200.0) == pytest.approx(200.0)
        policy.order([], now=300.0)  # no double charge
        assert policy.tracker.usage_of("u", 300.0) == pytest.approx(200.0)

    def test_pool_usage_charged(self):
        policy = FairSharePolicy(half_life=1e12,
                                 pool_weight=1.0 / (64 * 1024))
        job = make_job(job_id=1, submit=0.0, nodes=1, user="u")
        job.pool_grants = {"global": 64 * 1024}  # 64 GiB
        policy.observe([job], now=0.0)
        job.state = JobState.COMPLETED
        job.start_time, job.end_time = 0.0, 100.0
        policy.order([], now=100.0)
        # 1 node * 100 s + 64 GiB * 100 s * weight = 100 + 100.
        assert policy.tracker.usage_of("u", 100.0) == pytest.approx(200.0)

    def test_end_to_end_small_users_served_better(self):
        """One hog user vs many small users: fair-share charges the
        hog's accumulated usage, so the small users' jobs overtake the
        hog's *queued* jobs and their mean wait improves vs FCFS.  (The
        hog's own wait gets worse — that is the policy working, so raw
        wait spread is not the metric to assert on.)"""
        spec = ClusterSpec(num_nodes=8, nodes_per_rack=8,
                           node=NodeSpec(local_mem=32 * GiB))
        jobs = []
        job_id = 0
        # The hog submits a burst of long jobs first.
        for i in range(12):
            job_id += 1
            jobs.append(make_job(job_id=job_id, submit=float(i),
                                 nodes=4, runtime=3000.0, walltime=3600.0,
                                 mem=4 * GiB, user="hog"))
        # Small users trickle in afterwards.
        for i in range(24):
            job_id += 1
            jobs.append(make_job(job_id=job_id, submit=100.0 + i * 50,
                                 nodes=1, runtime=300.0, walltime=600.0,
                                 mem=2 * GiB, user=f"small{i % 6}"))

        def run_with(policy_name):
            fresh = [j.copy_request() for j in jobs]
            sched = Scheduler(queue_policy=queue_policy_for(policy_name),
                              penalty=NoPenalty())
            result = SchedulerSimulation(Cluster(spec), sched, fresh).run()
            audit_result(result)
            stats = {s.user: s for s in per_user_stats(result.jobs)}
            small_wait = sum(
                s.mean_wait for u, s in stats.items() if u != "hog"
            ) / (len(stats) - 1)
            return small_wait, stats["hog"].mean_wait

        fcfs_small, fcfs_hog = run_with("fcfs")
        fs_small, fs_hog = run_with("fairshare")
        assert fs_small <= fcfs_small  # small users served no worse
        assert fs_hog >= fcfs_hog  # the hog pays for its usage


class TestDominantSharePolicy:
    def test_orders_by_dominant_share(self):
        policy = DominantSharePolicy(total_nodes=64, total_mem=64 * 1024)
        # a: node share 32/64 = 0.5 dominant; b: mem share dominant:
        # 1 node, 48 GiB total mem of 64 GiB machine mem -> 0.75.
        a = make_job(job_id=1, submit=0.0, nodes=32, mem=1)
        b = make_job(job_id=2, submit=0.0, nodes=1, mem=48 * 1024)
        ordered = policy.order([b, a], now=0.0)
        assert [j.job_id for j in ordered] == [1, 2]

    def test_memory_heavy_not_starved_by_node_heavy(self):
        policy = DominantSharePolicy(total_nodes=64, total_mem=64 * 1024)
        small_mem = make_job(job_id=1, submit=0.0, nodes=1, mem=1024)
        big_nodes = make_job(job_id=2, submit=0.0, nodes=48, mem=1)
        ordered = policy.order([big_nodes, small_mem], now=0.0)
        assert ordered[0].job_id == 1

    def test_factory(self):
        assert queue_policy_for("dominant").name == "dominant"
        assert queue_policy_for("fairshare").name == "fairshare"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DominantSharePolicy(total_nodes=0)


class TestUserStats:
    def test_jain_index(self):
        assert jain_index([1.0, 1.0, 1.0]) == pytest.approx(1.0)
        assert jain_index([1.0, 0.0, 0.0]) == pytest.approx(1 / 3)
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0

    def test_per_user_aggregation(self):
        a1 = make_job(job_id=1, submit=0.0, nodes=2, runtime=100.0,
                      walltime=200.0, user="a")
        a1.state = JobState.COMPLETED
        a1.start_time, a1.end_time = 0.0, 100.0
        a1.pool_grants = {"global": 1024}
        b1 = make_job(job_id=2, submit=0.0, nodes=1, runtime=50.0,
                      walltime=100.0, user="b")
        b1.state = JobState.COMPLETED
        b1.start_time, b1.end_time = 10.0, 60.0
        pending = make_job(job_id=3, user="c")
        stats = per_user_stats([a1, b1, pending])
        assert [s.user for s in stats] == ["a", "b"]
        assert stats[0].node_seconds == pytest.approx(200.0)
        assert stats[0].pool_mib_seconds == pytest.approx(1024 * 100.0)
        assert stats[1].mean_wait == pytest.approx(10.0)


class TestDiurnalArrivals:
    def make_params(self, amplitude):
        return WorkloadParams(
            num_jobs=2000,
            interarrival=Exponential(120.0),
            diurnal_amplitude=amplitude,
            max_nodes=8,
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadParams(diurnal_amplitude=1.5).validate()
        with pytest.raises(ConfigurationError):
            WorkloadParams(diurnal_period=0).validate()

    def test_modulation_creates_rate_variation(self):
        flat = SyntheticWorkload(self.make_params(0.0)).generate(
            RandomStreams(3))
        wavy = SyntheticWorkload(self.make_params(0.8)).generate(
            RandomStreams(3))
        def hourly_cv(jobs):
            times = np.array([j.submit_time for j in jobs])
            bins = np.arange(0, times.max() + 3600, 3600)
            counts, _ = np.histogram(times, bins)
            counts = counts[:-1]  # drop ragged last bin
            return counts.std() / max(counts.mean(), 1e-9)
        assert hourly_cv(wavy) > hourly_cv(flat)

    def test_peak_troughs_align_with_phase(self):
        jobs = SyntheticWorkload(self.make_params(0.9)).generate(
            RandomStreams(1))
        times = np.array([j.submit_time for j in jobs])
        # Rate peaks in the first half-period (sin > 0), troughs in the
        # second: compare arrivals landing in each phase.
        phase = (times % 86400.0) / 86400.0
        peak = np.sum(phase < 0.5)
        trough = np.sum(phase >= 0.5)
        assert peak > trough


class TestGantt:
    def test_render_small_schedule(self):
        spec = ClusterSpec(
            num_nodes=2, nodes_per_rack=2,
            node=NodeSpec(local_mem=16 * GiB),
            pool=PoolSpec(global_pool=8 * GiB),
        )
        jobs = [
            make_job(job_id=1, submit=0.0, nodes=2, runtime=50.0,
                     walltime=100.0, mem=20 * GiB),
            make_job(job_id=2, submit=0.0, nodes=1, runtime=50.0,
                     walltime=100.0, mem=4 * GiB),
        ]
        result = SchedulerSimulation(
            Cluster(spec), Scheduler(penalty=NoPenalty()), jobs
        ).run()
        chart = render_gantt(result, width=20)
        lines = chart.splitlines()
        assert lines[0].startswith("gantt:")
        assert lines[1].startswith("n000 |")
        assert "1" in lines[1]  # job 1 occupied node 0
        assert any(line.startswith("pool |") for line in lines)

    def test_render_caps_nodes(self):
        spec = ClusterSpec(num_nodes=8, nodes_per_rack=8,
                           node=NodeSpec(local_mem=16 * GiB))
        jobs = [make_job(job_id=1, submit=0.0, nodes=1, runtime=10.0,
                         walltime=20.0, mem=1 * GiB)]
        result = SchedulerSimulation(
            Cluster(spec), Scheduler(penalty=NoPenalty()), jobs
        ).run()
        chart = render_gantt(result, width=10, max_nodes=4)
        assert "(4 more nodes)" in chart

    def test_idle_cells_are_dots(self):
        spec = ClusterSpec(num_nodes=1, nodes_per_rack=1,
                           node=NodeSpec(local_mem=16 * GiB))
        jobs = [
            make_job(job_id=1, submit=0.0, nodes=1, runtime=10.0,
                     walltime=20.0, mem=1 * GiB),
            make_job(job_id=2, submit=100.0, nodes=1, runtime=10.0,
                     walltime=20.0, mem=1 * GiB),
        ]
        result = SchedulerSimulation(
            Cluster(spec), Scheduler(penalty=NoPenalty()), jobs
        ).run()
        chart = render_gantt(result, width=22)
        node_row = chart.splitlines()[1]
        assert "." in node_row  # the idle gap between the two jobs

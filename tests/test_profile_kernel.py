"""Differential anchor for the vectorized sweep kernel.

The cursor's numpy kernel (``REPRO_PROFILE_KERNEL`` /
:func:`repro.sched.profile.set_kernel`) must be *pure acceleration*:
every ``earliest_start`` answer and every scan statistic bit-identical
to the retained scalar path, across both regimes (the no-reservation
full-grid walk and the reservation-regime skip-runs), across trial
overlays, resume anchors, caps, and interleaved folds.

The dtype guards get their own unit coverage: the breakpoint-time
array must stay float64 (an integer grid would re-round same-instant
grouping and cannot carry ``inf`` release times) and free-count
arrays must stay integer, with the mixed-dtype path forced
explicitly.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec, PoolSpec
from repro.memdis import GlobalPoolAllocator
from repro.sched import AvailabilityProfile, FirstFitPlacement, Reservation
from repro.sched.profile import get_kernel, set_kernel
from repro.units import GiB, HOUR
from repro.workload import Job, JobState

numpy = pytest.importorskip("numpy")


def _dur(job: Job) -> float:
    return job.walltime


def _cluster() -> Cluster:
    return Cluster(ClusterSpec(
        name="kernel", num_nodes=10, nodes_per_rack=5,
        node=NodeSpec(cores=8, local_mem=16 * GiB),
        pool=PoolSpec(rack_pool=24 * GiB, global_pool=48 * GiB),
    ))


def _start_job(rng, cluster, job_id, now):
    free = list(cluster.sorted_free_ids())
    if not free:
        return None
    take = rng.randint(1, min(3, len(free)))
    node_ids = free[:take]
    walltime = rng.choice((600.0, 1800.0, HOUR, 2 * HOUR, math.inf))
    job = Job(job_id=job_id, submit_time=0.0, nodes=take,
              walltime=walltime, runtime=walltime,
              mem_per_node=8 * GiB)
    grants = {}
    pools = cluster.all_pools()
    if pools and rng.random() < 0.5:
        pool = rng.choice(pools)
        amount = min(pool.free, rng.choice((1, 2, 4)) * GiB)
        if amount > 0:
            grants[pool.pool_id] = amount
    cluster.allocate_nodes(job.job_id, node_ids, 8 * GiB)
    if grants:
        cluster.allocate_pool(job.job_id, grants)
    job.state = JobState.RUNNING
    job.start_time = now - rng.uniform(0.0, 500.0)
    job.assigned_nodes = list(node_ids)
    job.pool_grants = grants
    job.dilation = 0.0
    return job


def _record(res):
    return None if res is None else (
        res.start, res.end, res.node_ids, res.pool_grants
    )


def _run_script(seed: int, kernel: str):
    """One deterministic interleaved scan/mutate/fold script, driven
    entirely by a seeded RNG so both kernels see identical worlds;
    returns every scan result and its statistics for comparison."""
    previous = set_kernel(kernel)
    try:
        rng = random.Random(seed)
        cluster = _cluster()
        now = rng.uniform(0.0, 300.0)
        running = []
        for i in range(rng.randint(1, 4)):
            job = _start_job(rng, cluster, 800 + i, now)
            if job is not None:
                running.append(job)
        profile = AvailabilityProfile(cluster, running, now, _dur)
        cursor = profile.sweep_cursor()
        placement = FirstFitPlacement()
        allocator = GlobalPoolAllocator()
        held = []
        out = []
        next_id = 900
        for step in range(14):
            roll = rng.random()
            if roll < 0.55:
                nodes = rng.randint(1, 10)
                duration = rng.choice((300.0, 900.0, HOUR))
                remote = rng.choice((0, 0, 2, 4)) * GiB
                job = Job(job_id=1, submit_time=0.0, nodes=nodes,
                          walltime=duration * 2, runtime=duration,
                          mem_per_node=16 * GiB + remote)
                kwargs = {}
                flavor = rng.random()
                if flavor < 0.25:
                    kwargs["not_after"] = now + rng.choice((0.0, 600.0, HOUR))
                elif flavor < 0.45:
                    kwargs["after"] = now + rng.uniform(0.0, HOUR)
                elif flavor < 0.7:
                    base = sorted(profile.free_at(now)[0])
                    if base:
                        take = base[: rng.randint(1, len(base))]
                        kwargs["trial"] = Reservation(
                            job_id=2, start=now,
                            end=now + rng.choice((600.0, HOUR)),
                            node_ids=tuple(take), pool_grants=(),
                        )
                        kwargs["not_after"] = now + rng.choice((600.0, HOUR))
                res = cursor.earliest_start(
                    job, duration, remote, placement, allocator, **kwargs)
                out.append((
                    "scan", _record(res),
                    cursor.last_scan_max_reject,
                    cursor.last_scan_count_reject,
                    cursor.last_scan_pool_rejects,
                ))
            elif roll < 0.7:
                start = now + rng.choice((0.0, 300.0, 600.0))
                res = Reservation(
                    job_id=100 + step, start=start,
                    end=start + rng.choice((0.0, 600.0, HOUR)),
                    node_ids=tuple(range(rng.randint(0, 6),
                                         rng.randint(7, 10))),
                    pool_grants=(),
                )
                profile.add_reservation(res)
                held.append(res)
            elif roll < 0.8 and held:
                profile.remove_reservation(
                    held.pop(rng.randrange(len(held))))
            elif roll < 0.9 and running:
                victim = running.pop(rng.randrange(len(running)))
                cluster.release_nodes(victim.job_id, victim.assigned_nodes)
                cluster.release_pool(victim.job_id)
                assert profile.apply_release(
                    victim.assigned_nodes, victim.pool_grants,
                    victim.start_time + victim.walltime)
                out.append(("fold", "release"))
            else:
                job = _start_job(rng, cluster, next_id, now)
                next_id += 1
                if job is None:
                    continue
                job.start_time = now
                running.append(job)
                profile.apply_start(
                    job.assigned_nodes, job.pool_grants,
                    job.start_time + job.walltime)
                out.append(("fold", "start"))
        return out
    finally:
        set_kernel(previous)


class TestKernelParity:
    @pytest.mark.parametrize("seed", range(40))
    def test_numpy_matches_scalar(self, seed):
        """Identical worlds, identical scripts: the numpy kernel must
        reproduce the scalar anchor's results *and* statistics."""
        scalar = _run_script(seed, "scalar")
        vector = _run_script(seed, "numpy")
        assert vector == scalar

    @pytest.mark.parametrize("seed", range(0, 40, 4))
    def test_auto_matches_scalar(self, seed):
        """``auto`` floor-gates the vector paths; on these deliberately
        tiny grids every scan must land on the scalar walk bit-for-bit."""
        assert _run_script(seed, "auto") == _run_script(seed, "scalar")

    def test_kernel_selection_roundtrip(self):
        previous = set_kernel("scalar")
        try:
            assert get_kernel() == "scalar"
            profile = AvailabilityProfile(_cluster(), [], 0.0, _dur)
            assert profile.sweep_cursor()._numpy is False
            set_kernel("numpy")
            profile = AvailabilityProfile(_cluster(), [], 0.0, _dur)
            assert profile.sweep_cursor()._numpy is True
        finally:
            set_kernel(previous)

    def test_auto_mode_floor_gates_vector_paths(self):
        from repro.sched.profile import _VEC_FLOOR
        previous = set_kernel("auto")
        try:
            assert get_kernel() == "auto"
            profile = AvailabilityProfile(_cluster(), [], 0.0, _dur)
            cursor = profile.sweep_cursor()
            assert cursor._numpy is True
            assert cursor._vec_floor == _VEC_FLOOR
            job = Job(job_id=1, submit_time=0.0, nodes=2, walltime=600.0,
                      runtime=300.0, mem_per_node=8 * GiB)
            cursor.earliest_start(job, 300.0, 0, FirstFitPlacement(),
                                  GlobalPoolAllocator())
            # Tiny grid: the scan ran on the scalar walk, so no
            # full-grid vectors were built.
            assert cursor._nores_cache is None
            # Forced mode drops the floor so parity suites reach the
            # vector code on grids this small.
            set_kernel("numpy")
            profile = AvailabilityProfile(_cluster(), [], 0.0, _dur)
            assert profile.sweep_cursor()._vec_floor == 0
        finally:
            set_kernel(previous)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            set_kernel("cupy")


class TestKernelDtypes:
    def test_integer_grid_forced_to_float64(self):
        """The mixed-dtype path: a grid whose times are all
        integer-valued (plus ``inf``) must still produce a float64
        breakpoint array and integer count vectors."""
        cluster = _cluster()
        forever = _start_job(random.Random(1), cluster, 800, 0.0)
        forever.start_time = 0.0
        forever.walltime = math.inf
        profile = AvailabilityProfile(cluster, [forever], 0.0, _dur)
        # Fold with *python int* release times: without the forced
        # dtype these would infer an integer (or object) array.
        profile.apply_start((8,), {}, 600)
        profile.apply_start((9,), {}, 1200)
        # Forced mode: ``auto`` would leave this tiny grid on the
        # scalar walk and never build the vectors under test.
        previous = set_kernel("numpy")
        try:
            cursor = profile.sweep_cursor()
            job = Job(job_id=1, submit_time=0.0, nodes=9, walltime=600.0,
                      runtime=300.0, mem_per_node=8 * GiB)
            cursor.earliest_start(job, 300.0, 0, FirstFitPlacement(),
                                  GlobalPoolAllocator())
        finally:
            set_kernel(previous)
        key, ks_all, counts_all = cursor._nores_cache
        assert numpy.issubdtype(ks_all.dtype, numpy.integer)
        assert numpy.issubdtype(counts_all.dtype, numpy.integer)
        assert math.inf in cursor._times

    def test_counts_mirror_stays_integer_after_folds(self):
        cluster = _cluster()
        rng = random.Random(2)
        running = [_start_job(rng, cluster, 800 + i, 0.0) for i in range(3)]
        running = [job for job in running if job is not None]
        profile = AvailabilityProfile(cluster, running, 0.0, _dur)
        cursor = profile.sweep_cursor()
        cursor._materialize_to(len(cursor._times) - 1)
        if cursor._numpy:
            assert cursor._sync_counts().dtype == numpy.int64
        victim = running.pop()
        cluster.release_nodes(victim.job_id, victim.assigned_nodes)
        cluster.release_pool(victim.job_id)
        assert profile.apply_release(
            victim.assigned_nodes, victim.pool_grants,
            victim.start_time + victim.walltime)
        profile.apply_start((0, 1), {}, 900)
        if cursor._numpy:
            arr = cursor._sync_counts()
            assert arr.dtype == numpy.int64
            assert [int(v) for v in arr] == cursor._counts

    def test_guard_rejects_degraded_arrays(self):
        from repro.sched.profile import SweepCursor
        with pytest.raises(AssertionError, match="breakpoint grid"):
            SweepCursor._assert_kernel_dtypes(
                numpy.array([0, 60, 120]), None)
        with pytest.raises(AssertionError, match="free-count"):
            SweepCursor._assert_kernel_dtypes(
                None, numpy.array([10.0, 9.0]))
        # The healthy pair passes.
        SweepCursor._assert_kernel_dtypes(
            numpy.array([0.0, math.inf]), numpy.array([1, 2]))

"""The pre-interval-index conservative backfill path, verbatim.

This module preserves, as *reference semantics* for the conservative
differential suite (``test_conservative_equivalence.py``), the two
pieces the reservation-aware interval index replaced:

* ``_ScanProfile.earliest_start`` — the availability-profile scan
  that re-examined **every** standing reservation at **every**
  breakpoint (the O(depth²)-ish inner loop measured in
  ``BENCH_PERF.json`` before this rewrite);
* ``_ReferenceConservativeBackfill`` — the conservative pass that
  rebuilt the profile from scratch each cycle and never folded
  completions or pass-local starts back into it.

Both are copied from the last pre-index revision without optimization;
like ``_reference_profile.py`` they live under ``tests/`` on purpose
and will be deleted once the differential suite has survived a few
releases.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.sched.backfill import BackfillStrategy
from repro.sched.base import Scheduler, SchedulerContext, StartDecision, build_scheduler
from repro.sched.profile import AvailabilityProfile, Reservation
from repro.workload.job import Job

if TYPE_CHECKING:  # pragma: no cover
    from repro.memdis.allocator import PoolAllocator
    from repro.sched.placement import PlacementPolicy

_EPS = 1e-9
_BF_EPS = 1e-6  # backfill.py's epsilon


class _ScanProfile(AvailabilityProfile):
    """AvailabilityProfile with the pre-index ``earliest_start``.

    The release-timeline sweep underneath is shared with the live
    implementation (it is covered by ``test_profile_equivalence.py``);
    what this class preserves is the *reservation handling*: the full
    per-breakpoint rescan of the reservation list.
    """

    def earliest_start(
        self,
        job: Job,
        duration: float,
        remote_per_node: int,
        placement: "PlacementPolicy",
        allocator: "PoolAllocator",
        after: Optional[float] = None,
        memory_aware: bool = True,
        not_after: Optional[float] = None,
    ) -> Optional[Reservation]:
        nodes_needed = job.nodes
        rel_times = self._rel_times
        cum_count = self._rel_cum_count
        base_count = len(self._base_free)
        reservations = self._reservations
        grant_times = self._grant_times
        grant_maps = self._grant_maps
        tighten = 0
        if len(reservations) == 1 and not_after is not None:
            only = reservations[0]
            claimed = frozenset(only.node_ids)
            if (
                only.start <= self._now + _EPS
                and only.end - _EPS > not_after
                and self._base_free.issuperset(claimed)
            ):
                tighten = len(claimed)
        for t in self.breakpoints(after=after, not_after=not_after):
            if not_after is not None and t > not_after:
                return None  # only the start instant can exceed the cap
            t_eps = t + _EPS
            k = bisect_right(rel_times, t_eps)
            if base_count + (cum_count[k - 1] if k else 0) - tighten < nodes_needed:
                continue
            end = t + duration
            end_eps = end - _EPS
            if k:
                self._ensure_swept(k - 1)
                base = self._rel_cum_free[k - 1]
            else:
                base = self._base_free
            # One pass over the reservations collects everything a
            # window query needs: nodes to remove (active at t, or
            # claimed by a start inside the window) and pool events.
            removal: Optional[set] = None
            active_grants: Optional[list] = None
            events: Optional[list] = None
            for j, res in enumerate(reservations):
                res_start = res.start
                res_end = res.end
                if res_start <= t_eps and t < res_end - _EPS:
                    if removal is None:
                        removal = set()
                    removal.update(res.node_ids)
                    if res.pool_grants:
                        if active_grants is None:
                            active_grants = []
                        active_grants.append(res.pool_grants)
                elif t_eps < res_start < end_eps:
                    if removal is None:
                        removal = set()
                    removal.update(res.node_ids)
                if t_eps < res_start < end_eps:
                    if events is None:
                        events = []
                    events.append((res_start, 0, j, 0, res.pool_grants, -1))
                if t_eps < res_end < end_eps:
                    if events is None:
                        events = []
                    events.append((res_end, 0, j, 1, res.pool_grants, +1))
            free = base.difference(removal) if removal else base
            if len(free) < nodes_needed:
                continue
            pool = dict(self._rel_cum_pool[k - 1]) if k else dict(self._base_pool_free)
            if active_grants:
                for grant_pairs in active_grants:
                    for pool_id, amount in grant_pairs:
                        pool[pool_id] = pool.get(pool_id, 0) - amount
            pool_min = dict(pool)
            if reservations:
                lo = bisect_right(grant_times, t_eps)
                hi = bisect_left(grant_times, end_eps)
                if lo < hi:
                    if events is None:
                        events = []
                    for g in range(lo, hi):
                        events.append((grant_times[g], 1, g, 0, grant_maps[g], +1))
                if events:
                    self._apply_pool_events(pool, pool_min, events)
            node_ids = placement.select(
                self._cluster, free, nodes_needed, remote_per_node, pool_min
            )
            if node_ids is None:
                continue
            if not memory_aware or remote_per_node == 0:
                plan: Optional[Dict[str, int]] = {}
            else:
                plan = allocator.plan(
                    self._cluster, node_ids, remote_per_node, free_override=pool_min
                )
                if plan is None:
                    continue
            return Reservation(
                job_id=job.job_id,
                start=t,
                end=end,
                node_ids=tuple(node_ids),
                pool_grants=tuple(sorted((plan or {}).items())),
            )
        return None


class _ReferenceConservativeBackfill(BackfillStrategy):
    """The pre-cache conservative pass: fresh profile every cycle."""

    name = "conservative"

    def __init__(self, depth: int = 64) -> None:
        if depth < 1:
            raise ConfigurationError("reservation depth must be >= 1")
        self.depth = depth

    def run(self, ctx: SchedulerContext, sched: Scheduler) -> List[StartDecision]:
        started: List[StartDecision] = []
        pending = ctx.pending()
        if not pending:
            return started
        ordered = sched.queue_policy.order(pending, ctx.now)
        allocator = sched.resolve_allocator(ctx.cluster)
        profile = sched.build_profile(ctx)

        for job in ordered[: self.depth]:
            split = sched.split_for(job, ctx.cluster)
            dur = sched.est_duration(job, ctx.cluster, split=split)
            res = profile.earliest_start(
                job, dur, split.remote, sched.placement, allocator
            )
            if res is None:
                continue  # cannot run even empty; engine rejects at submit
            if res.start <= ctx.now + _BF_EPS:
                decision = StartDecision(
                    job=job,
                    node_ids=res.node_ids,
                    plan=res.plan,
                    split=split,
                )
                if sched.gate.permit(ctx, sched, decision):
                    ctx.start_job(decision)
                    started.append(decision)
                    profile.add_reservation(
                        Reservation(
                            job.job_id,
                            ctx.now,
                            ctx.now + dur,
                            res.node_ids,
                            res.pool_grants,
                        )
                    )
                    continue
                # Gate said wait: fall through to reserving its slot so
                # lower-priority jobs cannot squat on it.
            profile.add_reservation(res)
            if res.start > ctx.now + _BF_EPS:
                ctx.record_promise(job.job_id, res.start)
        return started


class _ReferenceConservativeScheduler(Scheduler):
    """A Scheduler whose profiles use the pre-index reservation scan."""

    def build_profile(self, ctx: SchedulerContext) -> _ScanProfile:
        return _ScanProfile(
            ctx.cluster, ctx.running, ctx.now, self.duration_of_running
        )


def reference_conservative_scheduler(depth: int = 64, **kwargs) -> Scheduler:
    """``build_scheduler(backfill='conservative', **kwargs)`` pinned to
    the pre-index reservation-scan path (fresh profile per cycle, full
    rescan per breakpoint)."""
    kwargs.setdefault("backfill", "conservative")
    stock = build_scheduler(**kwargs)
    sched = _ReferenceConservativeScheduler(
        queue_policy=stock.queue_policy,
        backfill=_ReferenceConservativeBackfill(depth=depth),
        placement=stock.placement,
        split_policy=stock.split_policy,
        allocator=stock._allocator,
        penalty=stock.penalty,
        gate=stock.gate,
        kill_policy=stock.kill_policy,
    )
    return sched

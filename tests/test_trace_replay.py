"""Checkpointed shard-parallel trace replay tests.

The headline contract: a trace replayed in N checkpointed segments —
serially or across a process pool — produces a record stream and
rolling statistics *bit-identical* to the uninterrupted single-segment
run (sha256 over the stitched bytes, field-for-field accumulator
equality).  Around it: segment-planning invariants (strict submit
separation, full line coverage), idempotent crash resume via done
markers, the generic dependency-ordered task graph the chains run on,
and the CLI entry point.
"""

from __future__ import annotations

import json
import time

import pytest

from repro import cli
from repro.engine.simulation import SchedulerSimulation
from repro.errors import ConfigurationError
from repro.perf.sweep_scaling import workers_trend
from repro.runner.replay import (
    ReplaySpec,
    append_replay_history,
    generate_trace,
    plan_segments,
    replay_trace,
)
from repro.runner.sweep import PoolTask, SweepRunner
from repro.workload.swf import iter_swf


@pytest.fixture(scope="module")
def small_trace(tmp_path_factory):
    path = tmp_path_factory.mktemp("trace") / "wkth-400.swf"
    generate_trace(
        path, 400, reference="W-KTH", seed=11, cluster_nodes=256,
        include_memory=True,
    )
    return path


def small_spec(trace) -> ReplaySpec:
    return ReplaySpec(
        trace=str(trace),
        scheduler={"backfill": "easy", "penalty": {"kind": "linear", "beta": 0.3}},
        seed=11,
    )


# ----------------------------------------------------------------------
# segment planning
# ----------------------------------------------------------------------
def test_plan_covers_trace_with_strict_submit_separation(small_trace):
    plan = plan_segments(small_trace, 4)
    assert len(plan) == 4
    total_lines = sum(1 for _ in open(small_trace))
    assert plan[0].lineno == 0 and plan[0].byte_offset == 0
    assert sum(seg.line_count for seg in plan) == total_lines
    assert sum(seg.jobs for seg in plan) == 400
    for prev, nxt in zip(plan, plan[1:]):
        assert nxt.byte_offset > prev.byte_offset
        assert nxt.lineno == prev.lineno + prev.line_count
        assert nxt.emitted == prev.emitted + prev.jobs
        # The boundary-clock invariant: a checkpoint instant exists
        # strictly between the two segments.
        assert nxt.first_submit > prev.last_submit


def test_plan_single_segment_is_whole_trace(small_trace):
    (seg,) = plan_segments(small_trace, 1)
    assert seg.jobs == 400
    assert seg.emitted == 0


def test_plan_segment_streams_partition_the_job_stream(small_trace):
    spec = small_spec(small_trace)
    plan = plan_segments(small_trace, 4, spec.swf_fields())
    whole = [j.job_id for j in iter_swf(small_trace, fields=spec.swf_fields())]
    sharded = [
        j.job_id for seg in plan for j in spec.segment_stream(seg)
    ]
    assert sharded == whole


def test_plan_rejects_bad_inputs(tmp_path, small_trace):
    with pytest.raises(ConfigurationError):
        plan_segments(small_trace, 0)
    empty = tmp_path / "empty.swf"
    empty.write_text("; Computer: none\n")
    with pytest.raises(ConfigurationError):
        plan_segments(empty, 2)


def test_plan_collapses_when_submits_never_advance(tmp_path):
    line = "1 50 -1 100 -1 -1 -1 4 200 -1 1 0 0 -1 -1 -1 -1 -1\n"
    path = tmp_path / "flat.swf"
    path.write_text(line * 40)
    plan = plan_segments(path, 4)
    assert len(plan) == 1  # no legal cut point exists
    assert plan[0].jobs == 40


def test_plan_drops_torn_tail(tmp_path):
    line = "%d 50 -1 100 -1 -1 -1 4 200 -1 1 0 0 -1 -1 -1 -1 -1\n"
    path = tmp_path / "torn.swf"
    path.write_text("".join(line % i for i in range(1, 11)) + "11 gar")
    plan = plan_segments(path, 1)
    assert plan[0].jobs == 10


# ----------------------------------------------------------------------
# the task graph
# ----------------------------------------------------------------------
def _record(key, log_path):
    # Appends are atomic enough for order assertions (short writes).
    with open(log_path, "a") as fh:
        fh.write(key + "\n")
    return key.upper()


def _sleep_then(key, seconds):
    time.sleep(seconds)
    return key


def _boom():
    raise RuntimeError("worker exploded")


def chain_tasks(chain, n, log_path):
    return [
        PoolTask(
            key=f"{chain}/{i}",
            func=_record,
            args=(f"{chain}/{i}", str(log_path)),
            after=(f"{chain}/{i - 1}",) if i else (),
        )
        for i in range(n)
    ]


@pytest.mark.parametrize("workers", [1, 2])
def test_task_graph_respects_dependencies(tmp_path, workers):
    log = tmp_path / "order.log"
    tasks = chain_tasks("a", 3, log) + chain_tasks("b", 3, log)
    results = SweepRunner(workers=workers).run_task_graph(tasks)
    assert results == {
        f"{c}/{i}": f"{c.upper()}/{i}" for c in "ab" for i in range(3)
    }
    seen = log.read_text().splitlines()
    for chain in "ab":
        order = [s for s in seen if s.startswith(chain)]
        assert order == [f"{chain}/{i}" for i in range(3)]


def test_task_graph_rejects_duplicate_keys():
    tasks = [PoolTask(key="x", func=_boom), PoolTask(key="x", func=_boom)]
    with pytest.raises(ValueError, match="duplicate"):
        SweepRunner().run_task_graph(tasks)


def test_task_graph_rejects_unknown_dependency():
    tasks = [PoolTask(key="x", func=_boom, after=("ghost",))]
    with pytest.raises(ValueError):
        SweepRunner().run_task_graph(tasks)


def test_task_graph_rejects_cycles():
    tasks = [
        PoolTask(key="x", func=_boom, after=("y",)),
        PoolTask(key="y", func=_boom, after=("x",)),
    ]
    with pytest.raises(ValueError):
        SweepRunner().run_task_graph(tasks)


@pytest.mark.parametrize("workers", [1, 2])
def test_task_graph_surfaces_worker_failure(workers):
    # Serial execution propagates the original exception; the pool
    # path wraps it with the failing task's key.
    with pytest.raises(RuntimeError, match="worker exploded|'boom' failed"):
        SweepRunner(workers=workers).run_task_graph(
            [PoolTask(key="boom", func=_boom)]
        )


def test_task_graph_overlaps_independent_chains():
    """With 2 workers, two independent 1-task chains run concurrently:
    total wall time is well under the serial sum."""
    tasks = [
        PoolTask(key=k, func=_sleep_then, args=(k, 0.4)) for k in ("p", "q")
    ]
    t0 = time.perf_counter()
    SweepRunner(workers=2).run_task_graph(tasks)
    assert time.perf_counter() - t0 < 0.75


# ----------------------------------------------------------------------
# sharded replay identity
# ----------------------------------------------------------------------
def test_sharded_replay_identical_to_unsharded(tmp_path, small_trace):
    payload = replay_trace(
        small_spec(small_trace),
        segments=4,
        workers=2,
        out_dir=tmp_path / "segments",
        verify=True,
    )
    assert payload["segments_planned"] == 4
    assert payload["verify"] == {
        "sha256_match": True,
        "stats_match": True,
        "identical": True,
    }
    sharded = payload["chains"]["sharded"]
    unsharded = payload["chains"]["unsharded"]
    assert sharded["records"] == unsharded["records"] == 400
    assert sharded["summary"] == unsharded["summary"]
    # Every segment contributed records, so the identity is not vacuous.
    assert all(m["records"] > 0 for m in sharded["segment_markers"])


def test_replay_resumes_idempotently(tmp_path, small_trace):
    spec = small_spec(small_trace)
    out = tmp_path / "segments"
    first = replay_trace(spec, segments=3, workers=1, out_dir=out)
    second = replay_trace(spec, segments=3, workers=1, out_dir=out)
    for m1, m2 in zip(
        first["chains"]["sharded"]["segment_markers"],
        second["chains"]["sharded"]["segment_markers"],
    ):
        assert not m1["resumed"]
        assert m2["resumed"]
        assert m2["sha256"] == m1["sha256"]
        assert m2["stats"] == m1["stats"]
    assert (
        second["chains"]["sharded"]["sha256"]
        == first["chains"]["sharded"]["sha256"]
    )


def test_streamed_rolling_replay_matches_offline_run(small_trace):
    """The bounded-memory online path (streaming source + rolling
    fold) reaches the same terminal facts as an offline list-based
    simulation of the materialized trace."""
    spec = small_spec(small_trace)
    (seg,) = plan_segments(small_trace, 1, spec.swf_fields())

    cluster, scheduler = spec.build_engine_parts()
    offline = SchedulerSimulation(
        cluster, scheduler, list(spec.segment_stream(seg))
    ).run()

    cluster, scheduler = spec.build_engine_parts()
    online = SchedulerSimulation(
        cluster,
        scheduler,
        [],
        online=True,
        start_time=seg.first_submit,
        job_source=spec.segment_stream(seg),
    )
    online.drain()
    result = online.online_result()

    assert result.summary_counts() == offline.summary_counts()
    assert result.makespan == offline.makespan


# ----------------------------------------------------------------------
# trace generation and history
# ----------------------------------------------------------------------
def test_generate_trace_batches_stay_monotone(tmp_path):
    path = tmp_path / "batched.swf"
    info = generate_trace(
        path, 120, reference="W-KTH", seed=5, cluster_nodes=64,
        batch_jobs=50,  # forces three batches through the offset shift
    )
    assert info["jobs"] == 120
    jobs = list(iter_swf(path))
    assert [j.job_id for j in jobs] == list(range(1, 121))
    submits = [j.submit_time for j in jobs]
    assert submits == sorted(submits)


def test_generate_trace_rejects_empty(tmp_path):
    with pytest.raises(ConfigurationError):
        generate_trace(tmp_path / "none.swf", 0)


def test_replay_history_record_is_trend_inert(tmp_path, small_trace):
    payload = replay_trace(
        small_spec(small_trace), segments=2, workers=1,
        out_dir=tmp_path / "segments",
    )
    history = tmp_path / "history" / "workers_history.jsonl"
    assert append_replay_history(payload, history) is None  # dir absent
    history.parent.mkdir()
    record = append_replay_history(payload, history)
    assert record["kind"] == "trace-replay"
    assert record["rungs"] == []
    assert record["segment_boundaries"] == [
        seg["first_submit"] for seg in payload["plan"]
    ]
    # The scaling-trend consumer must ignore replay records entirely.
    assert workers_trend(history) is None


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_replay_generate_verify(tmp_path, capsys):
    out = tmp_path / "replay.json"
    code = cli.main(
        [
            "replay",
            "--generate", "150",
            "--segments", "3",
            "--workers", "2",
            "--nodes", "64",
            "--seed", "4",
            "--no-memory",
            "--verify",
            "--work-dir", str(tmp_path / "work"),
            "--out", str(out),
            "--history", str(tmp_path / "missing" / "history.jsonl"),
            "--quiet",
        ]
    )
    assert code == 0
    payload = json.loads(out.read_text())
    assert payload["verify"]["identical"] is True
    assert payload["chains"]["sharded"]["records"] == 150
    captured = capsys.readouterr()
    assert "IDENTICAL" in captured.out

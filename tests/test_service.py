"""Service-layer tests: online engine, protocol, daemon, load harness.

The load-bearing property throughout is **decision identity**: a trace
streamed through the live daemon — concurrently, in arbitrary arrival
interleavings — must produce exactly the schedule the offline engine
produces for the same trace.  Everything else (protocol strictness,
cancel semantics, concurrent-client safety) protects the machinery
that keeps that property true.
"""

from __future__ import annotations

import json
import random
import threading

import pytest

from repro.config import ExperimentConfig
from repro.engine.simulation import SchedulerSimulation
from repro.errors import ConfigurationError, SimulationError
from repro.service import (
    SchedulerService,
    ServiceClient,
    ServiceConfig,
    ServiceDaemon,
    ServiceError,
)
from repro.service.core import default_service_config, percentiles
from repro.service.load import compare_records, plan_windows, run_load
from repro.service.protocol import (
    ProtocolError,
    job_from_spec,
    job_to_record,
)
from repro.units import GiB
from repro.workload.job import JobState

from .conftest import make_job


def small_config(num_jobs: int = 60, **scheduler) -> ExperimentConfig:
    config = default_service_config()
    config.workload = dict(config.workload, num_jobs=num_jobs)
    if scheduler:
        config.scheduler = dict(config.scheduler, **scheduler)
    return config


def build_service(config: ExperimentConfig, **svc_kwargs) -> SchedulerService:
    return SchedulerService(
        config.build_cluster(),
        config.build_scheduler(),
        ServiceConfig(**svc_kwargs),
    )


def offline_records(config: ExperimentConfig, jobs):
    sim = SchedulerSimulation(
        config.build_cluster(),
        config.build_scheduler(),
        [job.copy_request() for job in jobs],
    )
    result = sim.run()
    return {
        job.job_id: job_to_record(job, result.promises.get(job.job_id))
        for job in result.jobs
    }


# ======================================================================
# online engine mode
# ======================================================================
class TestOnlineEngine:
    def test_run_is_refused_online(self, tiny_cluster):
        from repro.sched.base import Scheduler

        engine = SchedulerSimulation(tiny_cluster, Scheduler(), [], online=True)
        with pytest.raises(SimulationError):
            engine.run()

    def test_offline_requires_jobs(self, tiny_cluster):
        from repro.sched.base import Scheduler

        with pytest.raises(ConfigurationError):
            SchedulerSimulation(tiny_cluster, Scheduler(), [])

    def test_inject_advance_completes_jobs(self, tiny_cluster):
        from repro.sched.base import Scheduler

        engine = SchedulerSimulation(tiny_cluster, Scheduler(), [], online=True)
        engine.inject_jobs([make_job(job_id=1, runtime=100.0)])
        engine.advance_to(0.0)
        assert engine.job(1).state is JobState.RUNNING
        engine.advance_to(500.0)
        assert engine.job(1).state is JobState.COMPLETED

    def test_late_arrival_rejected(self, tiny_cluster):
        from repro.sched.base import Scheduler

        engine = SchedulerSimulation(tiny_cluster, Scheduler(), [], online=True)
        engine.advance_to(100.0)
        with pytest.raises(ConfigurationError):
            engine.inject_jobs([make_job(job_id=1, submit=50.0)])

    def test_duplicate_id_rejected(self, tiny_cluster):
        from repro.sched.base import Scheduler

        engine = SchedulerSimulation(tiny_cluster, Scheduler(), [], online=True)
        engine.inject_jobs([make_job(job_id=7)])
        with pytest.raises(ConfigurationError):
            engine.inject_jobs([make_job(job_id=7)])

    def test_clock_never_goes_backwards(self, tiny_cluster):
        from repro.sched.base import Scheduler

        engine = SchedulerSimulation(tiny_cluster, Scheduler(), [], online=True)
        engine.advance_to(10.0)
        with pytest.raises(SimulationError):
            engine.advance_to(5.0)

    def test_cancel_pending(self, tiny_cluster):
        from repro.sched.base import Scheduler

        engine = SchedulerSimulation(tiny_cluster, Scheduler(), [], online=True)
        engine.inject_jobs([make_job(job_id=1, submit=50.0)])
        assert engine.cancel_job(1) == "cancelled"
        job = engine.job(1)
        assert job.state is JobState.CANCELLED
        assert job.start_time is None and not job.assigned_nodes
        # The cancelled job's submit event must not resurrect it.
        engine.advance_to(100.0)
        assert engine.job(1).state is JobState.CANCELLED

    def test_cancel_running_kills_and_frees(self, tiny_cluster):
        from repro.sched.base import Scheduler

        engine = SchedulerSimulation(tiny_cluster, Scheduler(), [], online=True)
        engine.inject_jobs([make_job(job_id=1, nodes=4, runtime=1000.0)])
        engine.advance_to(0.0)
        assert engine.job(1).state is JobState.RUNNING
        assert engine.cancel_job(1) == "killed"
        job = engine.job(1)
        assert job.state is JobState.KILLED
        assert job.kill_reason == "cancelled"
        assert tiny_cluster.free_node_count == 4

    def test_cancel_unknown_and_terminal(self, tiny_cluster):
        from repro.sched.base import Scheduler

        engine = SchedulerSimulation(tiny_cluster, Scheduler(), [], online=True)
        assert engine.cancel_job(99) == "not_found"
        engine.inject_jobs([make_job(job_id=1, runtime=10.0)])
        engine.advance_to(100.0)
        assert engine.cancel_job(1) == "already_terminal"

    def test_streamed_identity_randomized_batches(self):
        """The anchor property: a shuffled, batched online replay is
        bit-identical to the offline run of the same trace."""
        config = small_config(num_jobs=80)
        jobs = config.build_jobs()
        expected = offline_records(config, jobs)

        engine = SchedulerSimulation(
            config.build_cluster(), config.build_scheduler(), [], online=True
        )
        rng = random.Random(7)
        for window in plan_windows(jobs, batch_target=9):
            batch = [job.copy_request() for job in window]
            rng.shuffle(batch)
            # Split the window into randomly sized sub-injections to
            # model concurrent clients racing; groups sharing a submit
            # instant still land before the advance, which is all the
            # identity property requires.
            while batch:
                cut = rng.randint(1, len(batch))
                engine.inject_jobs(batch[:cut])
                batch = batch[cut:]
            engine.advance_to(window[-1].submit_time)
        engine.drain()
        live = {
            job.job_id: job_to_record(job, engine.promise(job.job_id))
            for job in engine.jobs
        }
        assert compare_records(live, expected) == []


# ======================================================================
# protocol
# ======================================================================
class TestProtocol:
    def test_round_trip(self):
        job = make_job(job_id=3, nodes=2, mem=8 * GiB, user="alice", tag="x")
        spec = {
            "job_id": 3, "submit_time": 0.0, "nodes": 2,
            "walltime": 3600.0, "runtime": 1800.0,
            "mem_per_node": 8 * GiB, "mem_used_per_node": 8 * GiB,
            "user": "alice", "group": "group0", "tag": "x",
        }
        rebuilt = job_from_spec(spec)
        assert job_to_record(rebuilt) == job_to_record(job)
        # And the record survives JSON.
        assert json.loads(json.dumps(job_to_record(rebuilt)))

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError) as err:
            job_from_spec({"nodes": 1, "walltime": 60, "mem_per_node": 1024,
                           "mem": 1024})
        assert err.value.code == "unknown_field"

    def test_missing_field_rejected(self):
        with pytest.raises(ProtocolError) as err:
            job_from_spec({"nodes": 1})
        assert err.value.code == "missing_field"

    def test_runtime_defaults_to_walltime(self):
        job = job_from_spec(
            {"nodes": 1, "walltime": 500.0, "mem_per_node": 1024},
            default_job_id=1, default_submit_time=0.0,
        )
        assert job.runtime == 500.0

    def test_non_numeric_rejected(self):
        with pytest.raises(ProtocolError) as err:
            job_from_spec({"nodes": "two", "walltime": 60,
                           "mem_per_node": 1024},
                          default_job_id=1, default_submit_time=0.0)
        assert err.value.status == 400

    def test_percentiles_nearest_rank(self):
        stats = percentiles([0.010, 0.020])
        assert stats["p50"] == 10.0  # lower of two samples, not upper
        assert stats["max"] == 20.0
        assert percentiles([])["p50"] is None


# ======================================================================
# the daemon over real HTTP
# ======================================================================
@pytest.fixture
def daemon():
    config = small_config()
    service = build_service(config, mode="replay")
    with ServiceDaemon(service) as running:
        yield running


class TestDaemon:
    def test_health_and_state(self, daemon):
        with ServiceClient(daemon.url) as client:
            health = client.health()
            assert health["status"] == "ok"
            assert health["mode"] == "replay"
            state = client.state()
            assert state["cluster"]["num_nodes"] == 32
            assert state["scheduler"]["backfill"] == "easy"
            assert len(state["cluster"]["nodes"]) == 32

    def test_submit_query_lifecycle(self, daemon):
        with ServiceClient(daemon.url) as client:
            record = client.submit_one(
                {"nodes": 2, "walltime": 600.0, "runtime": 300.0,
                 "mem_per_node": 4 * GiB}
            )
            assert record["state"] == "running"
            assert record["start_time"] == 0.0
            assert len(record["assigned_nodes"]) == 2
            client.advance(1000.0)
            assert client.query(record["job_id"])["state"] == "completed"

    def test_auto_ids_are_unique(self, daemon):
        with ServiceClient(daemon.url) as client:
            records = client.submit(
                [{"nodes": 1, "walltime": 60.0, "mem_per_node": 1024}] * 5
            )
            ids = [record["job_id"] for record in records]
            assert len(set(ids)) == 5

    def test_error_envelopes(self, daemon):
        with ServiceClient(daemon.url) as client:
            with pytest.raises(ServiceError) as err:
                client.query(4242)
            assert err.value.status == 404
            assert err.value.code == "not_found"
            with pytest.raises(ServiceError) as err:
                client.submit_one({"nodes": 1})
            assert err.value.code == "missing_field"
            with pytest.raises(ServiceError) as err:
                client.advance(-5.0)
            assert err.value.code == "clock_backwards"
            with pytest.raises(ServiceError) as err:
                client._request("GET", "/v2/nope")
            assert err.value.status == 404

    def test_duplicate_submit_conflict(self, daemon):
        with ServiceClient(daemon.url) as client:
            client.submit_one({"job_id": 5, "nodes": 1, "walltime": 60.0,
                               "mem_per_node": 1024})
            with pytest.raises(ServiceError) as err:
                client.submit_one({"job_id": 5, "nodes": 1, "walltime": 60.0,
                                   "mem_per_node": 1024})
            assert err.value.status == 409
            assert err.value.code == "duplicate_job"

    def test_cancel_pending_and_running(self, daemon):
        with ServiceClient(daemon.url) as client:
            queued = client.submit_one(
                {"nodes": 1, "walltime": 60.0, "mem_per_node": 1024,
                 "submit_time": 500.0}
            )
            assert client.cancel(queued["job_id"])["outcome"] == "cancelled"
            running = client.submit_one(
                {"nodes": 1, "walltime": 600.0, "mem_per_node": 1024}
            )
            reply = client.cancel(running["job_id"])
            assert reply["outcome"] == "killed"
            assert reply["job"]["kill_reason"] == "cancelled"

    def test_advise_start_now_and_reject(self, daemon):
        with ServiceClient(daemon.url) as client:
            advice = client.advise(
                {"nodes": 2, "walltime": 600.0, "mem_per_node": 4 * GiB}
            )
            assert advice["verdict"] == "start_now"
            assert advice["bound"] == "none"
            assert len(advice["placement"]["node_ids"]) == 2
            advice = client.advise(
                {"nodes": 64, "walltime": 600.0, "mem_per_node": 4 * GiB}
            )
            assert advice["verdict"] == "reject"
            assert advice["bound"] == "machine-capacity"
            # Advise admits nothing.
            assert client.metrics()["counters"]["admitted"] == 0

    def test_advise_wait_on_busy_machine(self, daemon):
        with ServiceClient(daemon.url) as client:
            client.submit_one(
                {"nodes": 32, "walltime": 3600.0, "runtime": 3000.0,
                 "mem_per_node": 4 * GiB}
            )
            advice = client.advise(
                {"nodes": 4, "walltime": 600.0, "mem_per_node": 4 * GiB}
            )
            assert advice["verdict"] == "wait"
            assert advice["bound"] == "node-availability"
            assert advice["estimated_start"] > 0.0

    def test_wall_mode_owns_its_clock(self):
        service = build_service(small_config(), mode="wall", speed=3600.0)
        with ServiceDaemon(service) as running:
            with ServiceClient(running.url) as client:
                with pytest.raises(ServiceError) as err:
                    client.advance(10.0)
                assert err.value.code == "wall_clock"
                record = client.submit_one(
                    {"nodes": 1, "walltime": 60.0, "runtime": 30.0,
                     "mem_per_node": 1024}
                )
                deadline = threading.Event()
                for _ in range(100):
                    if client.query(record["job_id"])["state"] == "completed":
                        break
                    deadline.wait(0.05)
                else:
                    pytest.fail("wall clock never completed a 30s job")


# ======================================================================
# concurrency
# ======================================================================
class TestConcurrentClients:
    def test_cancel_racing_submit(self, daemon):
        """A cancel fired the instant a submit returns must land on a
        well-defined state: cancelled, killed, or (rarely) completed —
        never an error, never a wedged engine."""
        outcomes = []
        lock = threading.Lock()

        def one_pair(index: int) -> None:
            with ServiceClient(daemon.url) as client:
                record = client.submit_one(
                    {"nodes": 1, "walltime": 600.0, "runtime": 300.0,
                     "mem_per_node": 1024, "submit_time": float(index % 3)}
                )
                reply = client.cancel(record["job_id"])
                with lock:
                    outcomes.append(reply["outcome"])

        threads = [
            threading.Thread(target=one_pair, args=(i,)) for i in range(12)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(outcomes) == 12
        assert set(outcomes) <= {"cancelled", "killed", "already_terminal"}
        with ServiceClient(daemon.url) as client:
            assert client.health()["status"] == "ok"
            for record in client.jobs()["jobs"]:
                assert record["state"] in ("cancelled", "killed")

    def test_queries_during_passes(self, daemon):
        """Readers hammering state/metrics while writers submit must
        always observe a consistent document."""
        stop = threading.Event()
        errors = []

        def reader() -> None:
            with ServiceClient(daemon.url) as client:
                while not stop.is_set():
                    try:
                        state = client.state()
                        busy = sum(
                            1 for node in state["cluster"]["nodes"]
                            if node["job_id"] is not None
                        )
                        running = len(state["running"])
                        nodes_held = sum(
                            len(entry["nodes"]) for entry in state["running"]
                        )
                        if busy != nodes_held:
                            errors.append(
                                f"torn snapshot: {busy} busy nodes vs "
                                f"{nodes_held} held by running jobs"
                            )
                        client.metrics()
                    except ServiceError as exc:
                        errors.append(str(exc))

        readers = [threading.Thread(target=reader) for _ in range(2)]
        for thread in readers:
            thread.start()
        with ServiceClient(daemon.url) as client:
            for index in range(20):
                client.submit_one(
                    {"nodes": 1 + index % 4, "walltime": 900.0,
                     "runtime": 450.0, "mem_per_node": 4 * GiB,
                     "submit_time": float(index * 10)}
                )
                client.advance(float(index * 10))
            client.drain()
        stop.set()
        for thread in readers:
            thread.join()
        assert errors == []


# ======================================================================
# the load harness: differential identity through a live daemon
# ======================================================================
class TestLoadHarness:
    def test_plan_windows_never_split_an_instant(self):
        jobs = [make_job(job_id=i, submit=float(i // 3)) for i in range(30)]
        windows = plan_windows(jobs, batch_target=4)
        for earlier, later in zip(windows, windows[1:]):
            assert earlier[-1].submit_time != later[0].submit_time
        assert sum(len(w) for w in windows) == 30

    def test_live_replay_decision_identical(self, tmp_path):
        config = small_config(num_jobs=70)
        service = build_service(config, mode="replay")
        out = tmp_path / "BENCH_SERVICE.json"
        with ServiceDaemon(service) as running:
            document = run_load(
                running.url, config, clients=3, batch_target=16,
                quick=True, num_jobs=70, output=out,
                thresholds={"min_submissions_per_sec": 0.0,
                            "max_decision_p99_ms": 1e9},
            )
        assert document["identity"]["checked"]
        assert document["identity"]["identical"], document["identity"]["problems"]
        assert document["ok"], document["failures"]
        assert document["jobs"] == 70
        written = json.loads(out.read_text())
        assert written["submissions_per_sec"] > 0
        assert written["server"]["decision_latency_ms"]["count"] == 70

    def test_live_replay_conservative_backfill(self):
        config = small_config(num_jobs=50, backfill="conservative")
        service = build_service(config, mode="replay")
        with ServiceDaemon(service) as running:
            document = run_load(
                running.url, config, clients=2, quick=True, num_jobs=50,
                thresholds={"min_submissions_per_sec": 0.0,
                            "max_decision_p99_ms": 1e9},
            )
        assert document["identity"]["identical"], document["identity"]["problems"]

    def test_wall_mode_daemon_is_refused(self):
        service = build_service(small_config(), mode="wall")
        with ServiceDaemon(service) as running:
            with pytest.raises(ServiceError) as err:
                run_load(running.url, small_config(), quick=True)
            assert err.value.code == "wall_clock"

    def test_compare_records_reports_diffs(self):
        a = {1: {"state": "completed", "start_time": 0.0, "promise": None}}
        b = {1: {"state": "completed", "start_time": 5.0, "promise": None},
             2: {"state": "completed", "start_time": 0.0, "promise": None}}
        problems = compare_records(a, b)
        assert any("start_time" in p for p in problems)
        assert any("missing" in p for p in problems)

"""Streaming SWF ingest tests.

The contract under test: :func:`repro.workload.swf.iter_swf` is a
*chunk-invariant, resumable, bounded-memory* stream.  The same trace
must yield bit-identical jobs whether pulled in chunks of 1, 64, or
the whole file (synthesis included — per-line seeding, not a shared
sequential generator); a cursor recorded mid-stream must resume the
tail exactly; a torn final line is dropped while mid-file garbage
still raises; and consuming a 100k-line trace must stay within a
small constant memory ceiling (the property the trace-scale replay
path is built on).
"""

from __future__ import annotations

import math
import tracemalloc

import pytest

from repro.errors import TraceFormatError
from repro.runner.replay import generate_trace
from repro.sim.rng import RandomStreams
from repro.workload.models import LogNormal, Uniform
from repro.workload.swf import (
    SWFCursor,
    SWFFields,
    iter_swf,
    jobs_from_swf_text,
    read_swf,
)

_JOB_FIELDS = (
    "job_id",
    "submit_time",
    "nodes",
    "walltime",
    "runtime",
    "mem_per_node",
    "mem_used_per_node",
    "user",
    "group",
)


def job_key(job):
    return tuple(getattr(job, name) for name in _JOB_FIELDS)


def swf_line(
    job=1,
    submit=0,
    run=100,
    alloc=-1,
    used_kb=-1,
    procs=4,
    req_time=200,
    req_kb=-1,
    status=1,
    user=3,
    group=2,
):
    """One SWF data line (18 fields, -1 for unknowns)."""
    vals = [job, submit, -1, run, alloc, -1, used_kb, procs, req_time,
            req_kb, status, user, group, -1, -1, -1, -1, -1]
    return " ".join(str(v) for v in vals)


def sample_text(num_jobs=50):
    """A small trace exercising every sentinel path: headers, missing
    job ids, allocated-column fallback, skipped statuses, blanks."""
    lines = ["; Computer: test rig", "; MaxNodes: 64", ""]
    for i in range(1, num_jobs + 1):
        if i % 7 == 0:
            # No job number: parser assigns the next fallback id.
            lines.append(swf_line(job=-1, submit=i * 10, procs=i % 5 + 1))
        elif i % 11 == 0:
            # Requested processors missing: falls back to allocated.
            lines.append(swf_line(job=i, submit=i * 10, procs=-1, alloc=3))
        elif i % 13 == 0:
            lines.append(swf_line(job=i, submit=i * 10, status=5))  # cancelled
        elif i % 17 == 0:
            lines.append(swf_line(job=i, submit=i * 10, status=0))  # failed
        else:
            lines.append(swf_line(job=i, submit=i * 10, procs=i % 8 + 1))
    return "\n".join(lines) + "\n"


def synth_kwargs(seed=7):
    """Non-constant synthesis: detects any chunk/resume dependence in
    the per-line RNG derivation (a Constant would mask it)."""
    return dict(
        mem_synth=LogNormal(mu=math.log(2048), sigma=0.8, low=64, high=65536),
        usage_ratio_synth=Uniform(0.4, 0.95),
        streams=RandomStreams(seed),
    )


# ----------------------------------------------------------------------
# chunk invariance
# ----------------------------------------------------------------------
@pytest.mark.parametrize("chunk_lines", [1, 3, 64, 10**9])
def test_chunk_size_invisible_in_output(chunk_lines):
    text = sample_text()
    baseline = [
        job_key(j)
        for j in iter_swf(text.splitlines(True), **synth_kwargs())
    ]
    chunked = [
        job_key(j)
        for j in iter_swf(
            text.splitlines(True), chunk_lines=chunk_lines, **synth_kwargs()
        )
    ]
    assert chunked == baseline
    assert len(baseline) > 30  # the sample actually emits jobs


def test_synthesis_is_per_line_not_sequential():
    """Dropping a prefix must not shift later lines' synthesis draws."""
    text = sample_text()
    lines = text.splitlines(True)
    full = [job_key(j) for j in iter_swf(lines, **synth_kwargs())]
    # Resume from line 20 with the cursor of the consumed prefix.
    cursor = SWFCursor()
    head = []
    stream = iter_swf(lines, cursor=cursor, **synth_kwargs())
    for job in stream:
        head.append(job)
        if cursor.lineno >= 20:
            break
    resumed = list(
        iter_swf(
            lines[cursor.lineno:], cursor=cursor.copy(), **synth_kwargs()
        )
    )
    combined = [job_key(j) for j in head + resumed]
    assert combined == full


# ----------------------------------------------------------------------
# torn tails and malformed input
# ----------------------------------------------------------------------
def test_torn_final_line_is_dropped():
    text = sample_text(10) + swf_line(job=99, submit=990)[:7]  # no newline
    jobs = list(iter_swf(text.splitlines(True)))
    assert all(j.job_id != 99 for j in jobs)
    assert len(jobs) == len(list(iter_swf(sample_text(10).splitlines(True))))


@pytest.mark.parametrize("chunk_lines", [1, 4, 10**9])
def test_torn_tail_dropped_at_any_chunk_size(chunk_lines):
    # The torn line may or may not share a chunk with its predecessor;
    # both code paths (peek within chunk, pull next chunk) must agree.
    text = sample_text(10) + "3 garbage"
    jobs = list(iter_swf(text.splitlines(True), chunk_lines=chunk_lines))
    assert len(jobs) == len(list(iter_swf(sample_text(10).splitlines(True))))


def test_mid_file_garbage_raises():
    lines = sample_text(10).splitlines(True)
    lines.insert(5, "not an swf line\n")
    with pytest.raises(TraceFormatError):
        list(iter_swf(lines))


def test_newline_terminated_garbage_tail_raises():
    """Only a *physically last, unterminated* line may be torn."""
    text = sample_text(10) + "3 garbage\n"
    with pytest.raises(TraceFormatError):
        list(iter_swf(text.splitlines(True)))


def test_header_only_trace_yields_nothing():
    header: dict = {}
    jobs = list(
        iter_swf(
            ["; Computer: empty\n", "; MaxJobs: 0\n"], header=header
        )
    )
    assert jobs == []
    assert header == {"Computer": "empty", "MaxJobs": "0"}


# ----------------------------------------------------------------------
# sentinel handling
# ----------------------------------------------------------------------
def test_fallback_ids_stable_across_chunks_and_resume():
    """Jobs without a job number get sequential fallback ids derived
    from the *emitted* count — which must survive chunking and cursor
    resume unchanged."""
    lines = [swf_line(job=-1, submit=i * 5) + "\n" for i in range(1, 30)]
    expect = [j.job_id for j in iter_swf(lines)]
    assert expect == list(range(1, 30))
    for chunk in (1, 7):
        assert [j.job_id for j in iter_swf(lines, chunk_lines=chunk)] == expect
    cursor = SWFCursor()
    head = []
    stream = iter_swf(lines, cursor=cursor)
    for job in stream:
        head.append(job.job_id)
        if len(head) == 10:
            break
    tail = [j.job_id for j in iter_swf(lines[cursor.lineno:], cursor=cursor.copy())]
    assert head + tail == expect


def test_allocated_processor_fallback_and_status_filters():
    jobs, _ = jobs_from_swf_text(
        "\n".join(
            [
                swf_line(job=1, procs=-1, alloc=6),
                swf_line(job=2, status=5),
                swf_line(job=3, status=0),
                swf_line(job=4, run=0),
                swf_line(job=5, procs=-1, alloc=-1),
            ]
        )
        + "\n"
    )
    assert [j.job_id for j in jobs] == [1]
    assert jobs[0].nodes == 6
    kept, _ = jobs_from_swf_text(
        swf_line(job=3, status=0) + "\n", fields=SWFFields(keep_failed=True)
    )
    assert [j.job_id for j in kept] == [3]


def test_missing_memory_defaults_to_one_mib():
    jobs, _ = jobs_from_swf_text(swf_line() + "\n")
    assert jobs[0].mem_per_node == 1
    assert jobs[0].mem_used_per_node == 1


def test_cores_per_node_conversion():
    jobs, _ = jobs_from_swf_text(
        swf_line(procs=10, req_kb=2048) + "\n",
        fields=SWFFields(cores_per_node=4),
    )
    assert jobs[0].nodes == 3  # ceil(10 / 4)
    assert jobs[0].mem_per_node == 8  # 2048 KB/proc * 4 procs / 1024


# ----------------------------------------------------------------------
# read_swf rides the stream
# ----------------------------------------------------------------------
def test_read_swf_matches_text_parser(tmp_path):
    text = sample_text()
    path = tmp_path / "t.swf"
    path.write_text(text)
    from_file = read_swf(path, **synth_kwargs())
    from_text = jobs_from_swf_text(text, **synth_kwargs())
    assert [job_key(j) for j in from_file[0]] == [
        job_key(j) for j in from_text[0]
    ]
    assert from_file[1] == from_text[1] == {
        "Computer": "test rig", "MaxNodes": "64",
    }


# ----------------------------------------------------------------------
# bounded memory at trace scale
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def trace_100k(tmp_path_factory):
    path = tmp_path_factory.mktemp("swf") / "wkth-100k.swf"
    info = generate_trace(
        path, 100_000, reference="W-KTH", seed=3,
        cluster_nodes=256, include_memory=False,
    )
    assert info["jobs"] == 100_000
    return path


def test_streaming_peak_memory_bounded(trace_100k):
    """Consuming a 100k-line trace holds O(chunk) memory, not O(file).

    The measured peak is ~2 MiB (one line chunk plus one job in
    flight); the 8 MiB ceiling leaves headroom for allocator noise
    while sitting far below the ~10x-file-size cost of materializing
    the job list.
    """
    tracemalloc.start()
    count = sum(1 for _ in iter_swf(trace_100k))
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert count == 100_000
    assert peak < 8 * 2**20


def test_generated_trace_submits_monotone(trace_100k):
    last = -1.0
    count = 0
    for job in iter_swf(trace_100k):
        assert job.submit_time >= last
        last = job.submit_time
        count += 1
        assert job.job_id == count  # sequential renumbering across batches

#!/usr/bin/env python3
"""Regenerate the pinned golden digests under ``tests/golden/``.

Each end-to-end differential suite exports a ``golden_cases()``
iterator of ``(token, run)`` pairs; this tool runs every case through
the optimized scheduler stack and pins the sha256 digest of its
canonical decision document (schedule record + promises + cycles, see
``tests/_golden.py``).

Regenerating is a **deliberate re-baselining**.  The digests assert
that the scheduler's decisions have not changed; rerunning this tool
after a decision change makes the suite green by fiat.  Only commit
regenerated goldens together with the change that intentionally moved
the decisions, and say so in the commit message.

Usage::

    python tools/gen_golden.py             # all suites
    python tools/gen_golden.py --only pool_skew
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT))

#: suite name -> test module exporting GOLDEN + golden_cases()
SUITES = {
    "profile_equivalence": "tests.test_profile_equivalence",
    "conservative_equivalence": "tests.test_conservative_equivalence",
    "pool_skew": "tests.test_pool_skew",
    "plan_cache_skew": "tests.test_plan_cache_skew",
    "audit_presets": "tests.test_audit_presets",
}


def generate(name: str, module_name: str) -> Path:
    from tests._golden import GOLDEN_DIR, digest_result

    module = importlib.import_module(module_name)
    assert module.GOLDEN == name, (name, module.GOLDEN)
    digests = {}
    started = time.monotonic()
    for token, run in module.golden_cases():
        if token in digests:
            raise SystemExit(f"{name}: duplicate case token {token!r}")
        digests[token] = digest_result(run())
        done = len(digests)
        if done % 25 == 0:
            print(f"  {name}: {done} cases, {time.monotonic() - started:.1f}s",
                  flush=True)
    GOLDEN_DIR.mkdir(exist_ok=True)
    path = GOLDEN_DIR / f"{name}.json"
    path.write_text(json.dumps(digests, indent=1, sort_keys=True) + "\n")
    print(f"{name}: pinned {len(digests)} digests -> {path} "
          f"({time.monotonic() - started:.1f}s)", flush=True)
    return path


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only", action="append", choices=sorted(SUITES),
        help="regenerate just this suite (repeatable)",
    )
    args = parser.parse_args()
    names = args.only or sorted(SUITES)
    for name in names:
        generate(name, SUITES[name])
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

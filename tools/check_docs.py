#!/usr/bin/env python3
"""Repo documentation checks (CI: the docs-check step).

Two cheap, dependency-free invariants:

1. **Intra-repo links resolve.**  Every relative markdown link in
   ``README.md``, ``docs/*.md``, and ``benchmarks/perf/README.md``
   must point at an existing file or directory; fragment-only links
   (``#section``) and ``file.md#section`` fragments must match a
   heading in the target document (GitHub slug rules, simplified).
   External links (``http(s)://``, ``mailto:``) are not touched —
   CI must not depend on the network.

2. **Module docstrings in the scheduler core.**  Every ``*.py`` under
   ``src/repro/sched/`` carries a module docstring — the architecture
   book leans on them, and the bit-identity contracts live there.

Exit status 0 when clean; 1 with one line per violation otherwise.
Run locally as ``python tools/check_docs.py`` from the repo root (or
anywhere — paths are anchored to this file's location).
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Markdown files whose relative links must resolve.
LINKED_DOCS = ("README.md", "docs", "benchmarks/perf/README.md")

#: Python trees whose modules must carry docstrings.
DOCSTRING_TREES = ("src/repro/sched", "src/repro/service", "src/repro/audit")

# [text](target) — good enough for the hand-written markdown here;
# skips images' alt-text edge cases by accepting them identically.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _slug(heading: str) -> str:
    """GitHub's anchor slug, simplified: lowercase, punctuation out,
    each space to a hyphen (inline code/links stripped first).
    Spaces are NOT collapsed — "Fault tolerance & recovery" slugs to
    ``fault-tolerance--recovery`` on GitHub, double hyphen and all."""
    text = re.sub(r"[`*_\[\]()]", "", heading).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: Path) -> set:
    return {_slug(m.group(1)) for m in _HEADING.finditer(path.read_text())}


def _markdown_files() -> list:
    files = []
    for entry in LINKED_DOCS:
        path = REPO / entry
        if path.is_dir():
            files.extend(sorted(path.glob("*.md")))
        elif path.is_file():
            files.append(path)
    return files


def check_links() -> list:
    errors = []
    for md in _markdown_files():
        for match in _LINK.finditer(md.read_text()):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, fragment = target.partition("#")
            if path_part:
                resolved = (md.parent / path_part).resolve()
                if not resolved.exists():
                    errors.append(
                        f"{md.relative_to(REPO)}: broken link -> {target}"
                    )
                    continue
                if fragment and resolved.suffix == ".md":
                    if fragment not in _anchors(resolved):
                        errors.append(
                            f"{md.relative_to(REPO)}: missing anchor "
                            f"-> {target}"
                        )
            elif fragment and fragment not in _anchors(md):
                errors.append(
                    f"{md.relative_to(REPO)}: missing anchor -> #{fragment}"
                )
    return errors


def check_module_docstrings() -> list:
    errors = []
    for tree in DOCSTRING_TREES:
        for py in sorted((REPO / tree).rglob("*.py")):
            try:
                module = ast.parse(py.read_text())
            except SyntaxError as exc:  # pragma: no cover - tier-1 would fail
                errors.append(f"{py.relative_to(REPO)}: unparseable ({exc})")
                continue
            if ast.get_docstring(module) is None:
                errors.append(
                    f"{py.relative_to(REPO)}: missing module docstring"
                )
    return errors


def main() -> int:
    errors = check_links() + check_module_docstrings()
    for error in errors:
        print(f"docs-check: {error}", file=sys.stderr)
    if errors:
        print(f"docs-check: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    print(
        f"docs-check: OK ({len(_markdown_files())} markdown files, "
        f"{sum(1 for t in DOCSTRING_TREES for _ in (REPO / t).rglob('*.py'))} "
        "modules)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
